//! The generating-function ranking core.
//!
//! The PT-k subset-probability DP is one instance of a Poisson-binomial
//! generating function over the compressed dominant set: the coefficient
//! row `Pr(T(t), j)` that Eq. 4 reads is the degree-`j` coefficient of
//! `Π (1 − q_i + q_i·x)` over the pool. Li, Saha & Deshpande and Chang,
//! Yu & Qin observe that U-TopK, U-KRanks, Global-Topk and expected ranks
//! all factor through the same coefficients, so this module hosts:
//!
//! * the dominant-set bookkeeping ([`Compressor`]) shared by the executor
//!   and the view [`Scanner`](crate::Scanner) — rule-tuple compression
//!   (Corollaries 1–2) plus the §4.3.2 prefix-shared refold;
//! * [`GfState`], the Chang et al. O(n·k) *incremental* layer on top: one
//!   full-pool coefficient row maintained by O(k) convolve/deconvolve per
//!   absorbed tuple, with the per-rank row served by deconvolving the own
//!   rule out — falling back to the prefix-shared refold only when the
//!   inversion cannot certify its accuracy ("where applicable");
//! * [`RankSemantics`] and the per-semantics finishers (the U-TopK
//!   best-first vector search, the U-KRanks argmax, the Global-Topk
//!   selection, the Cormode-style expected-rank closed form) that turn one
//!   scan's coefficients into each answer shape.
//!
//! PT-k keeps its original [`Compressor`]-driven path untouched — same
//! float operations in the same order, so answers stay bit-identical to
//! the pre-refactor engine — and the pruning bounds of Theorems 3–5 remain
//! PT-k-only: they bound `Pr^k`, not vector probabilities or expectations,
//! so every other semantics runs unpruned (and says so in `EXPLAIN`).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use ptk_access::RuleKey;
use ptk_core::TupleId;

use crate::dp;
use crate::exec::PtkResult;
use crate::layout::{StableRecord, StableSeed};
use crate::plan::SharingVariant;

/// The ranking semantics a plan answers — which consumer of the
/// generating-function core interprets the scan's coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankSemantics {
    /// PT-k (the paper): every tuple whose top-k probability `Pr^k` passes
    /// a threshold. The only semantics with sound pruning bounds
    /// (Theorems 3–5 bound `Pr^k` directly).
    #[default]
    Ptk,
    /// U-TopK (Soliman et al.): the most probable top-k *vector*.
    UTopK,
    /// U-KRanks (Soliman et al.): per rank `j`, the tuple most likely to be
    /// ranked exactly `j`-th.
    UKRanks,
    /// Global-Topk (Zhang & Chomicki): the k tuples with the highest top-k
    /// probability `Pr^k`.
    GlobalTopk,
    /// Expected rank (Cormode et al.): the k tuples with the smallest
    /// expected rank over possible worlds (absent tuples rank last).
    ExpectedRank,
}

impl RankSemantics {
    /// Every semantics, in fingerprint-discriminant order.
    pub const ALL: [RankSemantics; 5] = [
        RankSemantics::Ptk,
        RankSemantics::UTopK,
        RankSemantics::UKRanks,
        RankSemantics::GlobalTopk,
        RankSemantics::ExpectedRank,
    ];

    /// The literature's name for the semantics.
    pub fn paper_name(self) -> &'static str {
        match self {
            RankSemantics::Ptk => "PT-k",
            RankSemantics::UTopK => "U-TopK",
            RankSemantics::UKRanks => "U-KRanks",
            RankSemantics::GlobalTopk => "Global-Topk",
            RankSemantics::ExpectedRank => "expected-rank",
        }
    }

    /// The SQL `RANK BY` keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            RankSemantics::Ptk => "PTK",
            RankSemantics::UTopK => "U_TOPK",
            RankSemantics::UKRanks => "U_KRANKS",
            RankSemantics::GlobalTopk => "GLOBAL_TOPK",
            RankSemantics::ExpectedRank => "EXPECTED_RANK",
        }
    }

    /// Parses a user-facing name: the `RANK BY` keywords and the common
    /// flag spellings (`u-topk`, `utopk`, `erank`, …), case-insensitive.
    pub fn parse(name: &str) -> Option<RankSemantics> {
        let folded: String = name
            .chars()
            .filter(|c| *c != '_' && *c != '-')
            .flat_map(char::to_lowercase)
            .collect();
        match folded.as_str() {
            "ptk" => Some(RankSemantics::Ptk),
            "utopk" => Some(RankSemantics::UTopK),
            "ukranks" => Some(RankSemantics::UKRanks),
            "globaltopk" => Some(RankSemantics::GlobalTopk),
            "expectedrank" | "erank" => Some(RankSemantics::ExpectedRank),
            _ => None,
        }
    }

    /// Whether the §4.4 pruning bounds are sound for this semantics.
    /// Theorems 3–5 bound the top-k probability `Pr^k` of unseen tuples;
    /// vector probabilities, exact-rank probabilities and expectations are
    /// not monotone in `Pr^k`, so every other semantics must scan the full
    /// ranked input.
    pub fn has_pruning_bounds(self) -> bool {
        matches!(self, RankSemantics::Ptk)
    }

    /// The `EXPLAIN` stage label of the semantics' finisher.
    pub fn stage_label(self) -> &'static str {
        match self {
            RankSemantics::Ptk => "ptk[threshold emit]",
            RankSemantics::UTopK => "u-topk[best-first vector]",
            RankSemantics::UKRanks => "u-kranks[argmax per rank]",
            RankSemantics::GlobalTopk => "global-topk[top-k by Pr^k]",
            RankSemantics::ExpectedRank => "expected-rank[closed form]",
        }
    }
}

impl std::fmt::Display for RankSemantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// One element of a compressed dominant set, as tracked by [`Compressor`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PoolEntry {
    /// An independent tuple. `tag` is caller-assigned and unique per scan
    /// (the scan rank for the executor, the ranked position for `Scanner`).
    Indep {
        /// Caller-assigned unique identity.
        tag: usize,
        /// Membership probability.
        prob: f64,
    },
    /// A rule-tuple: the scanned members of one rule compressed into a
    /// single pseudo-tuple (Corollary 1).
    Rule {
        /// The rule's identity.
        key: RuleKey,
        /// Dense slot of the rule's state inside the owning [`Compressor`]
        /// (assigned at first absorption), so per-entry state checks are
        /// array lookups on the hot path.
        idx: u32,
        /// Members absorbed so far; two rule-tuples for the same rule are
        /// interchangeable iff this matches.
        absorbed: u32,
        /// Sum of the absorbed members' probabilities.
        mass: f64,
    },
}

impl PoolEntry {
    /// The probability this entry contributes to the DP.
    pub(crate) fn mass(&self) -> f64 {
        match self {
            PoolEntry::Indep { prob, .. } => *prob,
            PoolEntry::Rule { mass, .. } => *mass,
        }
    }

    /// Whether two entries denote the same pseudo-tuple with the same mass
    /// (so a DP row computed through one is valid for the other). Uses the
    /// absorbed-member count rather than float mass comparison.
    fn same(&self, other: &PoolEntry) -> bool {
        match (self, other) {
            (PoolEntry::Indep { tag: a, .. }, PoolEntry::Indep { tag: b, .. }) => a == b,
            (
                PoolEntry::Rule {
                    key: ka,
                    absorbed: ca,
                    ..
                },
                PoolEntry::Rule {
                    key: kb,
                    absorbed: cb,
                    ..
                },
            ) => ka == kb && ca == cb,
            _ => false,
        }
    }
}

/// Per-rule absorption state.
#[derive(Debug, Clone)]
struct RuleState {
    /// The rule's identity (the reverse of the dense-slot mapping).
    key: RuleKey,
    /// Sum of absorbed members' probabilities.
    mass: f64,
    /// Number of absorbed members.
    absorbed: u32,
    /// Absorption step of the most recent member (recency ordering when the
    /// rule's layout is unknown).
    last_touch: usize,
    /// Scan rank of the next unabsorbed member, when the source knows it.
    next_rank: Option<usize>,
    /// Total member count, when the source knows it.
    len: Option<usize>,
    /// Whether every member has been absorbed (requires `len`). Completed
    /// rule-tuples join the stable group and never change again.
    completed: bool,
    /// Lazy-variant scratch: stamp marking membership in the kept prefix.
    kept_stamp: u64,
}

/// An item of the "stable" group: independents and completed rule-tuples,
/// in the order they became available (observation 1 of §4.3.2).
#[derive(Debug, Clone, Copy)]
enum StableItem {
    Indep {
        tag: usize,
        prob: f64,
    },
    /// A completed rule, by its dense state slot.
    CompletedRule(u32),
}

/// What the executor (or the [`Scanner`](crate::Scanner) adapter) tells the
/// compressor about the tuple being folded into the pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AbsorbSpec {
    /// Unique identity for independents (scan rank / ranked position).
    pub tag: usize,
    /// Membership probability.
    pub prob: f64,
    /// The tuple's rule, if any.
    pub rule: Option<RuleKey>,
    /// The rule's total member count, if known.
    pub rule_len: Option<usize>,
    /// Scan rank of the rule's next member *after* this one, if known.
    pub next_member_rank: Option<usize>,
}

/// The incremental compressed dominant set plus its prefix-shared DP rows —
/// the shared core behind the executor and the view [`Scanner`](crate::Scanner).
///
/// Ordering invariants (the source of the bit-for-bit view/source parity):
/// the stable group keeps availability order; open rule-tuples are ordered
/// by next-member rank descending when the layout is known (the paper's
/// aggressive policy), falling back to absorption recency otherwise; and
/// rules iterate in ascending `RuleKey` order (`rule_order` is kept sorted
/// by key), which for dense view-derived keys is exactly the view's
/// rule-index order.
#[derive(Debug)]
pub(crate) struct Compressor {
    k: usize,
    variant: SharingVariant,
    /// Entry list of the most recent *built* step.
    entries: Vec<PoolEntry>,
    /// `rows[m]` is the DP row after `entries[..m]`; `rows.len() == entries.len() + 1`.
    rows: Vec<Vec<f64>>,
    /// Freelist of retired row buffers (all length `k`), so recomputing a
    /// suffix recycles the truncated rows' allocations instead of hitting
    /// the allocator once per entry.
    spare_rows: Vec<Vec<f64>>,
    /// Stable-group items in availability order.
    stable: Vec<StableItem>,
    /// Rule states in first-absorption order; `PoolEntry::Rule::idx` and
    /// `StableItem::CompletedRule` index into this, so the hot per-entry
    /// checks never touch a map.
    rule_states: Vec<RuleState>,
    /// `RuleKey` → dense slot in `rule_states`.
    rule_index: HashMap<RuleKey, u32>,
    /// Dense slots sorted by ascending `RuleKey` — the canonical rule
    /// iteration order.
    rule_order: Vec<u32>,
    /// DP cells computed so far (`k` per recomputed entry).
    dp_cells: u64,
    /// Entries recomputed so far (the paper's Eq. 5 cost itself).
    entries_recomputed: u64,
    /// Lazy-variant scratch: stamps marking independents (by tag) already
    /// in the kept prefix, so membership tests are O(1).
    kept_indep_stamp: Vec<u64>,
    stamp: u64,
    /// Absorption counter driving `last_touch`.
    step: usize,
}

impl Compressor {
    pub(crate) fn new(k: usize, variant: SharingVariant) -> Compressor {
        assert!(k > 0, "top-k queries require k >= 1");
        Compressor {
            k,
            variant,
            entries: Vec::new(),
            rows: vec![dp::unit_row(k)],
            spare_rows: Vec::new(),
            stable: Vec::new(),
            rule_states: Vec::new(),
            rule_index: HashMap::new(),
            rule_order: Vec::new(),
            dp_cells: 0,
            entries_recomputed: 0,
            kept_indep_stamp: Vec::new(),
            stamp: 0,
            step: 0,
        }
    }

    /// A compressor positioned exactly where a sequential scan would be
    /// after absorbing ranks `0..boundary` at a **rule-closed cut**: every
    /// absorbed tuple is stable (an independent or a completed rule), and
    /// the last *built* entry list is the availability-ordered stable
    /// prefix `stables[..entry_count]` — the `entry_count` items available
    /// before rank `boundary - 1` — whose DP row is `boundary_row`.
    ///
    /// Why that is the sequential state: with pruning off, the list built
    /// while evaluating the tuple at `boundary - 1` excludes that tuple's
    /// own rule (Corollary 2) and contains no other open rule (any rule
    /// open after rank `boundary - 2` must have its next member at
    /// `boundary - 1` — making it the own rule — or at `>= boundary`,
    /// contradicting rule closure), so it is precisely the stable items
    /// available through rank `boundary - 2`, in availability order, for
    /// every [`SharingVariant`]. The DP rows *under* the last one are
    /// seeded as placeholders: `RC` rebuilds from `rows[0]` (the unit row)
    /// anyway, and the prefix-sharing variants keep `rows[..=entry_count]`
    /// intact and only ever read the last, so no placeholder is read and
    /// the forked state stays bit-identical to the sequential one.
    ///
    /// Counters start at zero: the seeded prefix's DP work was already
    /// counted by whoever produced `boundary_row` (the preceding
    /// segments), so per-segment counters sum to the sequential totals.
    pub(crate) fn from_boundary(
        k: usize,
        variant: SharingVariant,
        stables: &[StableRecord],
        entry_count: usize,
        boundary_row: &[f64],
    ) -> Compressor {
        let mut comp = Compressor::new(k, variant);
        for rec in stables {
            match rec.seed {
                StableSeed::Indep { tag, prob } => {
                    comp.stable.push(StableItem::Indep { tag, prob });
                }
                StableSeed::Rule {
                    key,
                    absorbed,
                    mass,
                } => {
                    let idx = comp.rule_states.len() as u32;
                    let states = &comp.rule_states;
                    let pos = comp
                        .rule_order
                        .partition_point(|&j| states[j as usize].key < key);
                    comp.rule_states.push(RuleState {
                        key,
                        mass,
                        absorbed,
                        last_touch: 0,
                        next_rank: None,
                        len: Some(absorbed as usize),
                        completed: true,
                        kept_stamp: 0,
                    });
                    comp.rule_order.insert(pos, idx);
                    comp.rule_index.insert(key, idx);
                    comp.stable.push(StableItem::CompletedRule(idx));
                }
            }
        }
        debug_assert!(entry_count <= comp.stable.len());
        comp.entries = comp.stable[..entry_count]
            .iter()
            .map(|item| match *item {
                StableItem::Indep { tag, prob } => PoolEntry::Indep { tag, prob },
                StableItem::CompletedRule(idx) => {
                    let rs = &comp.rule_states[idx as usize];
                    PoolEntry::Rule {
                        key: rs.key,
                        idx,
                        absorbed: rs.absorbed,
                        mass: rs.mass,
                    }
                }
            })
            .collect();
        if entry_count > 0 {
            // `rows[0]` stays the unit row; only the last row is real.
            comp.rows.extend((1..entry_count).map(|_| Vec::new()));
            comp.rows.push(boundary_row.to_vec());
        }
        comp
    }

    /// How many members of `rule` have been absorbed so far.
    pub(crate) fn absorbed(&self, rule: RuleKey) -> u32 {
        self.rule_index
            .get(&rule)
            .map_or(0, |&i| self.rule_states[i as usize].absorbed)
    }

    /// The absorbed mass of `rule` (0 when the rule has not been seen).
    pub(crate) fn rule_mass(&self, rule: RuleKey) -> f64 {
        self.rule_index
            .get(&rule)
            .map_or(0.0, |&i| self.rule_states[i as usize].mass)
    }

    pub(crate) fn dp_cells(&self) -> u64 {
        self.dp_cells
    }

    pub(crate) fn entries_recomputed(&self) -> u64 {
        self.entries_recomputed
    }

    /// Distinct rules compressed into rule-tuples so far (Corollary 2).
    pub(crate) fn rules_compressed(&self) -> u64 {
        self.rule_states.len() as u64
    }

    /// The entry list of the most recently built step.
    pub(crate) fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// The DP row of the most recently built step:
    /// `row[j] = Pr(T(t_i), j)` for `j < k`.
    pub(crate) fn last_row(&self) -> &[f64] {
        self.rows.last().expect("rows never empty")
    }

    /// Builds the desired (ordered) compressed dominant set for a tuple
    /// belonging to `own_rule`, per the configured [`SharingVariant`].
    pub(crate) fn desired_list(&mut self, own_rule: Option<RuleKey>) -> Vec<PoolEntry> {
        match self.variant {
            SharingVariant::Rc | SharingVariant::Aggressive => self.canonical_list(own_rule, None),
            SharingVariant::Lazy => {
                // Keep the longest still-valid prefix of the previous list.
                let valid_len = self
                    .entries
                    .iter()
                    .take_while(|e| self.entry_still_valid(e, own_rule))
                    .count();
                // Mark the kept prefix so membership tests are O(1).
                self.stamp += 1;
                let stamp = self.stamp;
                for i in 0..valid_len {
                    match self.entries[i] {
                        PoolEntry::Indep { tag, .. } => {
                            if self.kept_indep_stamp.len() <= tag {
                                self.kept_indep_stamp.resize(tag + 1, 0);
                            }
                            self.kept_indep_stamp[tag] = stamp;
                        }
                        PoolEntry::Rule { idx, .. } => {
                            self.rule_states[idx as usize].kept_stamp = stamp;
                        }
                    }
                }
                let mut list = self.entries[..valid_len].to_vec();
                // Append everything not already kept, in canonical order.
                list.extend(self.canonical_list(own_rule, Some(stamp)));
                list
            }
        }
    }

    /// Recomputes the DP rows for `desired`, reusing the rows of the
    /// longest common prefix with the previous list (none under `RC`).
    pub(crate) fn recompute(&mut self, desired: Vec<PoolEntry>) {
        let prefix = match self.variant {
            SharingVariant::Rc => 0,
            SharingVariant::Aggressive | SharingVariant::Lazy => {
                common_prefix(&self.entries, &desired)
            }
        };
        let recomputed = desired.len() - prefix;
        self.entries_recomputed += recomputed as u64;
        self.dp_cells += (recomputed * self.k) as u64;
        self.spare_rows.extend(self.rows.drain(prefix + 1..));
        for e in &desired[prefix..] {
            // Recycle a retired buffer when one is free; copying the last
            // row into it is the same f64 sequence as cloning it, so the
            // DP stays bit-identical either way.
            let spare = self.spare_rows.pop();
            let last = self.rows.last().expect("rows never empty");
            let mut row = match spare {
                Some(mut buf) => {
                    buf.clear();
                    buf.extend_from_slice(last);
                    buf
                }
                None => last.clone(),
            };
            dp::convolve_in_place(&mut row, e.mass());
            self.rows.push(row);
        }
        self.entries = desired;
    }

    /// Folds a scanned tuple into the pool (after its evaluation, or as the
    /// only action when it was pruned).
    pub(crate) fn absorb(&mut self, spec: AbsorbSpec) {
        self.step += 1;
        match spec.rule {
            None => self.stable.push(StableItem::Indep {
                tag: spec.tag,
                prob: spec.prob,
            }),
            Some(key) => {
                let idx = match self.rule_index.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = self.rule_states.len() as u32;
                        let states = &self.rule_states;
                        let pos = self
                            .rule_order
                            .partition_point(|&j| states[j as usize].key < key);
                        self.rule_states.push(RuleState {
                            key,
                            mass: 0.0,
                            absorbed: 0,
                            last_touch: 0,
                            next_rank: None,
                            len: None,
                            completed: false,
                            kept_stamp: 0,
                        });
                        self.rule_order.insert(pos, i);
                        self.rule_index.insert(key, i);
                        i
                    }
                };
                let rs = &mut self.rule_states[idx as usize];
                // A rule's mass is a probability: member probabilities that
                // mathematically sum to 1 can overshoot by an ulp in f64,
                // and the DP rejects q > 1. Clamp exactly as the view does
                // (`RankedView` tolerates mass <= 1 + 1e-9 and stores
                // `min(1.0)`). `ScanLayout::materialize` mirrors this
                // operation bit for bit.
                rs.mass = (rs.mass + spec.prob).min(1.0);
                rs.absorbed += 1;
                rs.last_touch = self.step;
                rs.next_rank = spec.next_member_rank;
                if rs.len.is_none() {
                    rs.len = spec.rule_len;
                }
                if rs.len == Some(rs.absorbed as usize) {
                    // The rule just completed: it joins the stable group at
                    // this availability point. Without a known length the
                    // rule-tuple simply stays open, which is equally
                    // correct (it contributes the same mass either way).
                    rs.completed = true;
                    self.stable.push(StableItem::CompletedRule(idx));
                }
            }
        }
    }

    /// The subset-probability row over the *entire current pool* — every
    /// absorbed tuple compressed, no rule excluded. This is what a future
    /// independent tuple's dominant set would contain if scanning stopped
    /// here; used by the early-exit upper bound.
    pub(crate) fn pool_row(&self) -> Vec<f64> {
        let mut row = dp::unit_row(self.k);
        for item in &self.stable {
            let mass = match *item {
                StableItem::Indep { prob, .. } => prob,
                StableItem::CompletedRule(idx) => self.rule_states[idx as usize].mass,
            };
            dp::convolve_in_place(&mut row, mass);
        }
        for &idx in &self.rule_order {
            let rs = &self.rule_states[idx as usize];
            if !rs.completed {
                dp::convolve_in_place(&mut row, rs.mass);
            }
        }
        row
    }

    /// Rules that currently have absorbed members but are not (known to be)
    /// complete, with their absorbed mass. Used by the early-exit upper
    /// bound: a future member of such a rule excludes this mass from its
    /// dominant set.
    pub(crate) fn open_rules(&self) -> Vec<(RuleKey, f64)> {
        self.rule_order
            .iter()
            .map(|&idx| &self.rule_states[idx as usize])
            .filter(|rs| !rs.completed)
            .map(|rs| (rs.key, rs.mass))
            .collect()
    }

    /// Whether a previously-built entry still denotes a live, unchanged
    /// pseudo-tuple for a step whose tuple belongs to `own_rule`.
    fn entry_still_valid(&self, e: &PoolEntry, own_rule: Option<RuleKey>) -> bool {
        match e {
            PoolEntry::Indep { .. } => true,
            PoolEntry::Rule {
                key, idx, absorbed, ..
            } => Some(*key) != own_rule && self.rule_states[*idx as usize].absorbed == *absorbed,
        }
    }

    /// The canonical (aggressive) ordering of the current pool, excluding
    /// `own_rule` (Corollary 2) and — when `skip_stamp` is set — every
    /// entry already stamped into the lazy kept prefix: stable group first
    /// in availability order, then open rule-tuples by next-member rank
    /// descending (falling back to absorption recency, oldest first, when
    /// the layout is unknown).
    fn canonical_list(&self, own_rule: Option<RuleKey>, skip_stamp: Option<u64>) -> Vec<PoolEntry> {
        let mut list = Vec::with_capacity(self.stable.len() + 4);
        for item in &self.stable {
            let (kept, e) = match *item {
                StableItem::Indep { tag, prob } => (
                    self.kept_indep_stamp.get(tag).copied().unwrap_or(0),
                    PoolEntry::Indep { tag, prob },
                ),
                StableItem::CompletedRule(idx) => {
                    let rs = &self.rule_states[idx as usize];
                    (
                        rs.kept_stamp,
                        PoolEntry::Rule {
                            key: rs.key,
                            idx,
                            absorbed: rs.absorbed,
                            mass: rs.mass,
                        },
                    )
                }
            };
            // `skip_stamp` is always >= 1 when set, so an unstamped entry
            // (kept == 0) is never skipped.
            if skip_stamp != Some(kept) {
                list.push(e);
            }
        }
        let mut open: Vec<((u8, usize), PoolEntry)> = Vec::new();
        for &idx in &self.rule_order {
            let rs = &self.rule_states[idx as usize];
            if rs.completed || Some(rs.key) == own_rule {
                continue;
            }
            if skip_stamp.is_some_and(|s| rs.kept_stamp == s) {
                continue;
            }
            // Known next-member ranks sort descending ahead of the
            // recency-ordered remainder (oldest touch first).
            let order = match rs.next_rank {
                Some(rank) => (0u8, usize::MAX - rank),
                None => (1u8, rs.last_touch),
            };
            open.push((
                order,
                PoolEntry::Rule {
                    key: rs.key,
                    idx,
                    absorbed: rs.absorbed,
                    mass: rs.mass,
                },
            ));
        }
        open.sort_by_key(|(order, _)| *order);
        list.extend(open.into_iter().map(|(_, e)| e));
        list
    }
}

/// Length of the longest common prefix of two entry lists (by
/// [`PoolEntry::same`]).
pub(crate) fn common_prefix(a: &[PoolEntry], b: &[PoolEntry]) -> usize {
    a.iter()
        .zip(b.iter())
        .take_while(|(x, y)| x.same(y))
        .count()
}

/// The Chang et al. incremental layer over [`Compressor`]: one full-pool
/// coefficient row maintained in O(k) per absorbed tuple.
///
/// Absorbing an independent tuple convolves its probability in; absorbing
/// a further member of an already-open rule deconvolves the rule-tuple's
/// previous mass out and convolves the grown mass back in — both O(k), so
/// a full unpruned scan is O(n·k) instead of the refold's worst-case
/// O(n²·k). The per-rank row `Pr(T(t), j)` (the own rule excluded,
/// Corollary 2) is served by one more deconvolve. Whenever
/// [`dp::deconvolve`] declines to certify an inversion the state falls
/// back to the exact prefix-shared refold — the "where applicable" of the
/// incremental recurrences — so the answer is always well-defined.
#[derive(Debug)]
pub(crate) struct GfState {
    comp: Compressor,
    /// The coefficient row over the entire absorbed pool.
    pool_row: Vec<f64>,
    rows_incremental: u64,
    rows_refolded: u64,
    dp_cells: u64,
}

impl GfState {
    pub(crate) fn new(k: usize, variant: SharingVariant) -> GfState {
        GfState {
            comp: Compressor::new(k, variant),
            pool_row: dp::unit_row(k),
            rows_incremental: 0,
            rows_refolded: 0,
            dp_cells: 0,
        }
    }

    /// The coefficient row `Pr(T(t), j)` for a tuple of `own_rule` — the
    /// whole pool with the own rule-tuple deconvolved out. O(k) on the
    /// incremental path; refolds through the [`Compressor`] when the
    /// inversion cannot certify its accuracy.
    pub(crate) fn row_excluding(&mut self, own_rule: Option<RuleKey>) -> Vec<f64> {
        let own_mass = own_rule.map_or(0.0, |key| self.comp.rule_mass(key));
        if own_mass <= 0.0 {
            self.rows_incremental += 1;
            return self.pool_row.clone();
        }
        self.dp_cells += self.pool_row.len() as u64;
        if let Some(row) = dp::deconvolve(&self.pool_row, own_mass) {
            self.rows_incremental += 1;
            return row;
        }
        self.rows_refolded += 1;
        let desired = self.comp.desired_list(own_rule);
        self.comp.recompute(desired);
        self.comp.last_row().to_vec()
    }

    /// Folds a scanned tuple into the pool and advances the incremental
    /// row: convolve for a new element, deconvolve-then-convolve when a
    /// rule-tuple's mass grows, full refold when the inversion declines.
    pub(crate) fn absorb(&mut self, spec: AbsorbSpec) {
        let old_mass = spec.rule.map_or(0.0, |key| self.comp.rule_mass(key));
        self.comp.absorb(spec);
        let new_mass = match spec.rule {
            None => spec.prob,
            Some(key) => self.comp.rule_mass(key),
        };
        self.dp_cells += self.pool_row.len() as u64;
        if old_mass <= 0.0 {
            dp::convolve_in_place(&mut self.pool_row, new_mass);
            return;
        }
        match dp::deconvolve(&self.pool_row, old_mass) {
            Some(mut row) => {
                self.dp_cells += row.len() as u64;
                dp::convolve_in_place(&mut row, new_mass);
                self.pool_row = row;
            }
            None => {
                // Uncertifiable inversion: rebuild the row from the exact
                // compressed pool (O(|pool|·k), rare by construction).
                self.rows_refolded += 1;
                self.dp_cells += (self.comp.stable.len() * self.pool_row.len()) as u64;
                self.pool_row = self.comp.pool_row();
            }
        }
    }

    /// How many members of `rule` have been absorbed so far.
    pub(crate) fn absorbed(&self, rule: RuleKey) -> u32 {
        self.comp.absorbed(rule)
    }

    /// Rows served through the O(k) incremental recurrence.
    pub(crate) fn rows_incremental(&self) -> u64 {
        self.rows_incremental
    }

    /// Rows (or pool rebuilds) that fell back to the exact refold.
    pub(crate) fn rows_refolded(&self) -> u64 {
        self.rows_refolded
    }

    /// DP cells touched: incremental convolve/deconvolve passes plus any
    /// refold work done through the inner [`Compressor`].
    pub(crate) fn dp_cells(&self) -> u64 {
        self.dp_cells + self.comp.dp_cells()
    }

    pub(crate) fn entries_recomputed(&self) -> u64 {
        self.comp.entries_recomputed()
    }

    pub(crate) fn rules_compressed(&self) -> u64 {
        self.comp.rules_compressed()
    }
}

/// One emitted row of a non-PT-k semantics answer.
///
/// `value` is the semantics' figure of merit for the row: the exact-rank
/// probability for U-KRanks, the top-k probability `Pr^k` for Global-Topk,
/// the expected rank for expected-rank, and the membership probability for
/// U-TopK vector members (a vector has one joint probability, not per-row
/// ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticsRow {
    /// 0-based scan rank (for a view, the tuple's ranked position).
    pub position: usize,
    /// The tuple's id as reported by the source.
    pub id: TupleId,
    /// Its ranking score.
    pub score: f64,
    /// Its membership probability.
    pub membership: f64,
    /// The semantics' per-row value (see the type docs).
    pub value: f64,
}

/// The answer of [`PtkExecutor::execute_semantics`](crate::PtkExecutor::execute_semantics):
/// one variant per [`RankSemantics`].
#[derive(Debug, Clone)]
pub enum SemanticsAnswer {
    /// The PT-k answer, exactly as the threshold path produces it.
    Ptk(PtkResult),
    /// The most probable top-k vector, in ranking order.
    UTopK {
        /// The vector's members (`value` = membership probability).
        rows: Vec<SemanticsRow>,
        /// The probability that this vector is exactly the top-k list.
        probability: f64,
        /// States popped by the best-first search.
        states_explored: u64,
    },
    /// Per rank `j ∈ 1..=k` (in order), the winning tuple
    /// (`value` = probability of being ranked exactly `j`-th).
    UKRanks(Vec<SemanticsRow>),
    /// The k tuples with the highest `Pr^k`, descending
    /// (`value` = `Pr^k`; ties broken toward the smaller position).
    GlobalTopk(Vec<SemanticsRow>),
    /// The k tuples with the smallest expected rank, ascending
    /// (`value` = expected rank; ties broken toward the smaller position).
    ExpectedRank(Vec<SemanticsRow>),
}

impl SemanticsAnswer {
    /// Which semantics produced this answer.
    pub fn semantics(&self) -> RankSemantics {
        match self {
            SemanticsAnswer::Ptk(_) => RankSemantics::Ptk,
            SemanticsAnswer::UTopK { .. } => RankSemantics::UTopK,
            SemanticsAnswer::UKRanks(_) => RankSemantics::UKRanks,
            SemanticsAnswer::GlobalTopk(_) => RankSemantics::GlobalTopk,
            SemanticsAnswer::ExpectedRank(_) => RankSemantics::ExpectedRank,
        }
    }

    /// Number of emitted answer rows (PT-k: answers passing the threshold).
    pub fn answer_count(&self) -> usize {
        match self {
            SemanticsAnswer::Ptk(result) => result.answers.len(),
            SemanticsAnswer::UTopK { rows, .. } => rows.len(),
            SemanticsAnswer::UKRanks(rows)
            | SemanticsAnswer::GlobalTopk(rows)
            | SemanticsAnswer::ExpectedRank(rows) => rows.len(),
        }
    }

    /// The non-PT-k answer rows, when this is not a PT-k answer.
    pub fn rows(&self) -> Option<&[SemanticsRow]> {
        match self {
            SemanticsAnswer::Ptk(_) => None,
            SemanticsAnswer::UTopK { rows, .. } => Some(rows),
            SemanticsAnswer::UKRanks(rows)
            | SemanticsAnswer::GlobalTopk(rows)
            | SemanticsAnswer::ExpectedRank(rows) => Some(rows),
        }
    }
}

/// A semantics evaluation that could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticsError {
    /// The U-TopK best-first search popped more than `max_states` states.
    SearchExhausted {
        /// The configured cap that was hit.
        max_states: u64,
    },
}

impl std::fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticsError::SearchExhausted { max_states } => {
                write!(f, "U-TopK search exceeded {max_states} states")
            }
        }
    }
}

impl std::error::Error for SemanticsError {}

/// Hard cap on states popped by the in-engine U-TopK search; the search is
/// exponential in the worst case (inherent to the vector semantics), though
/// it behaves well on realistic inputs.
pub const UTOPK_MAX_STATES: u64 = 20_000_000;

/// What the one gf scan records per rank, for the post-scan finishers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScanRecord {
    pub id: TupleId,
    pub score: f64,
    pub prob: f64,
    pub rule: Option<RuleKey>,
    /// Sum of same-rule member probabilities ranked strictly above.
    pub mates_above: f64,
    /// Sum of every membership probability ranked strictly above.
    pub prefix_above: f64,
}

/// A partial state of the U-TopK best-first search: the scan has consumed
/// ranks `0..depth`, the tuples in `chosen` are present, every other
/// consumed tuple is absent. `prob` is the exact probability of that event,
/// an upper bound on any completion (future factors are at most 1).
#[derive(Debug, Clone)]
struct VectorState {
    depth: usize,
    prob: f64,
    chosen: Vec<usize>,
    /// Rules (by dense first-appearance index) with a chosen member.
    rules_chosen: Vec<u32>,
}

impl PartialEq for VectorState {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for VectorState {}
impl PartialOrd for VectorState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for VectorState {
    fn cmp(&self, other: &Self) -> Ordering {
        // Highest probability pops first; among equals, the
        // lexicographically smaller vector pops first (deterministic
        // tie-breaking, matching the enumeration oracle).
        self.prob
            .total_cmp(&other.prob)
            .then_with(|| other.chosen.cmp(&self.chosen))
            .then_with(|| other.depth.cmp(&self.depth))
    }
}

/// The U-TopK best-first vector search over one scan's records.
///
/// The state probability is admissible (future factors ≤ 1), so the first
/// complete state popped is optimal; a greedy completion seeds a lower
/// bound that keeps the frontier small on high-probability inputs.
pub(crate) fn utopk_search(
    records: &[ScanRecord],
    k: usize,
    max_states: u64,
) -> Result<(Vec<usize>, f64, u64), SemanticsError> {
    let n = records.len();
    // Rules by dense first-appearance index, so rule membership checks in
    // states are small-vector scans.
    let mut rule_idx: HashMap<RuleKey, u32> = HashMap::new();
    let rule_of: Vec<Option<u32>> = records
        .iter()
        .map(|rec| {
            rec.rule.map(|key| {
                let next = rule_idx.len() as u32;
                *rule_idx.entry(key).or_insert(next)
            })
        })
        .collect();

    // Seed a lower bound with the greedy completion (include every tuple
    // the rules allow until the vector is full): any state whose upper
    // bound falls below a known complete vector's probability can never be
    // optimal, so it is not even pushed.
    let lower_bound = {
        let mut prob = 1.0f64;
        let mut chosen = 0usize;
        let mut taken: Vec<u32> = Vec::new();
        for (pos, rec) in records.iter().enumerate() {
            if chosen == k {
                break;
            }
            let p = rec.prob;
            match rule_of[pos] {
                None => {
                    prob *= p;
                    chosen += 1;
                }
                Some(idx) => {
                    if taken.contains(&idx) {
                        continue; // forced exclusion, factor 1
                    }
                    let remaining = 1.0 - rec.mates_above;
                    if remaining > 1e-12 {
                        prob *= (p / remaining).min(1.0);
                        chosen += 1;
                        taken.push(idx);
                    }
                    // remaining ~ 0: the tuple cannot exist; skip.
                }
            }
            if prob == 0.0 {
                break;
            }
        }
        prob
    };

    let push_state = |heap: &mut BinaryHeap<VectorState>, s: VectorState| {
        if s.prob >= lower_bound {
            heap.push(s);
        }
    };
    let mut heap = BinaryHeap::new();
    heap.push(VectorState {
        depth: 0,
        prob: 1.0,
        chosen: Vec::new(),
        rules_chosen: Vec::new(),
    });
    let mut popped: u64 = 0;

    while let Some(state) = heap.pop() {
        popped += 1;
        if popped > max_states {
            return Err(SemanticsError::SearchExhausted { max_states });
        }
        if state.chosen.len() == k || state.depth == n {
            return Ok((state.chosen, state.prob, popped));
        }
        let pos = state.depth;
        let p = records[pos].prob;
        match rule_of[pos] {
            None => {
                // Include.
                if p > 0.0 {
                    let mut chosen = state.chosen.clone();
                    chosen.push(pos);
                    push_state(
                        &mut heap,
                        VectorState {
                            depth: pos + 1,
                            prob: state.prob * p,
                            chosen,
                            rules_chosen: state.rules_chosen.clone(),
                        },
                    );
                }
                // Exclude.
                if p < 1.0 {
                    push_state(
                        &mut heap,
                        VectorState {
                            depth: pos + 1,
                            prob: state.prob * (1.0 - p),
                            chosen: state.chosen,
                            rules_chosen: state.rules_chosen,
                        },
                    );
                }
            }
            Some(idx) => {
                if state.rules_chosen.contains(&idx) {
                    // Another member of the rule is already in the vector:
                    // this tuple is absent with conditional probability 1.
                    push_state(
                        &mut heap,
                        VectorState {
                            depth: pos + 1,
                            prob: state.prob,
                            chosen: state.chosen,
                            rules_chosen: state.rules_chosen,
                        },
                    );
                } else {
                    // No member chosen yet: condition on "no member of the
                    // rule ranked above this one appeared".
                    let remaining = 1.0 - records[pos].mates_above;
                    debug_assert!(remaining > -1e-12);
                    let include = if remaining > 1e-12 {
                        p / remaining
                    } else {
                        0.0
                    };
                    if include > 0.0 {
                        let mut chosen = state.chosen.clone();
                        chosen.push(pos);
                        let mut rules_chosen = state.rules_chosen.clone();
                        rules_chosen.push(idx);
                        push_state(
                            &mut heap,
                            VectorState {
                                depth: pos + 1,
                                prob: state.prob * include.min(1.0),
                                chosen,
                                rules_chosen,
                            },
                        );
                    }
                    let exclude = if remaining > 1e-12 {
                        ((remaining - p) / remaining).max(0.0)
                    } else {
                        1.0
                    };
                    if exclude > 0.0 {
                        push_state(
                            &mut heap,
                            VectorState {
                                depth: pos + 1,
                                prob: state.prob * exclude,
                                chosen: state.chosen,
                                rules_chosen: state.rules_chosen,
                            },
                        );
                    }
                }
            }
        }
    }
    // Heap drained without a complete state: only possible on an empty scan
    // (the initial state is complete there) or if every branch had
    // probability zero — the empty vector.
    Ok((Vec::new(), 0.0, popped))
}

/// The Cormode et al. closed-form expected rank of every scanned tuple
/// (0-based; a tuple absent from a world ranks at the bottom, `|W|`).
///
/// * present: the higher-ranked co-occurring mass, `prefix − mates_above`
///   (rule-mates cannot appear with the tuple);
/// * absent: every other tuple with its conditional probability — each
///   rule-mate `u` has `Pr(u | t absent) = Pr(u) / (1 − Pr(t))`.
///
/// Plain sums over the scan's records: O(n), no coefficients needed.
pub(crate) fn expected_ranks_closed(records: &[ScanRecord]) -> Vec<f64> {
    let total_mass: f64 = records.iter().map(|rec| rec.prob).sum();
    // Per rule: total member mass, clamped to 1 exactly as a view stores it.
    let mut rule_total: HashMap<RuleKey, f64> = HashMap::new();
    for rec in records {
        if let Some(key) = rec.rule {
            let mass = rule_total.entry(key).or_insert(0.0);
            *mass = (*mass + rec.prob).min(1.0);
        }
    }
    records
        .iter()
        .map(|rec| {
            let p = rec.prob;
            let (mates_above, mates_total) = match rec.rule {
                None => (0.0, 0.0),
                Some(key) => (rec.mates_above, rule_total[&key] - p),
            };
            let rank_if_present = rec.prefix_above - mates_above;
            let rank_if_absent = if p >= 1.0 {
                0.0 // never absent; the term is weighted by zero anyway
            } else {
                (total_mass - p - mates_total) + mates_total / (1.0 - p)
            };
            p * rank_if_present + (1.0 - p) * rank_if_absent
        })
        .collect()
}
