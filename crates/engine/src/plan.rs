//! Query planning: from a PT-k request to an executable stage pipeline.
//!
//! A [`PtkPlan`] captures everything the executor needs before it touches a
//! source: the query depth `k`, the (validated) probability thresholds, and
//! the [`EngineOptions`]. [`PtkPlan::stages`] lowers those into the ordered
//! [`PlanStage`] pipeline of DESIGN.md §9 — ranked retrieval, rule
//! compression, prefix-shared DP, pruning, answer emission — which is what
//! `EXPLAIN` surfaces and what the executor drives.
//!
//! Validation lives here (not in the executor) so every entry point —
//! view-based, source-based, single- or multi-threshold — rejects malformed
//! queries identically, before any retrieval happens.

use std::fmt::Write as _;

use ptk_core::PtkQuery;
use ptk_obs::Snapshot;

use crate::gf::RankSemantics;
use crate::stats::{counters, ExecStats};

/// How the compressed dominant set is ordered between consecutive steps
/// (§4.3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingVariant {
    /// `RC` — rule-tuple compression only: the DP is recomputed from scratch
    /// for every tuple. The paper's baseline.
    Rc,
    /// `RC+AR` — aggressive reordering: independents and completed
    /// rule-tuples always precede open rule-tuples; open rule-tuples are
    /// ordered by next-member position descending. The common prefix with
    /// the previous step's list is reused.
    Aggressive,
    /// `RC+LR` — lazy reordering: the maximal still-valid prefix of the
    /// previous list is kept verbatim; only the remainder is reordered by
    /// the aggressive policy. Never worse than `RC+AR` (§4.3.2).
    #[default]
    Lazy,
}

impl SharingVariant {
    /// The paper's name for the variant (`RC`, `RC+AR`, `RC+LR`).
    pub fn paper_name(&self) -> &'static str {
        match self {
            SharingVariant::Rc => "RC",
            SharingVariant::Aggressive => "RC+AR",
            SharingVariant::Lazy => "RC+LR",
        }
    }
}

/// Configuration of the PT-k engine, shared by the view-based and
/// source-based entry points.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Prefix-sharing variant (§4.3.2). `RC+LR` is the paper's best and the
    /// default.
    pub variant: SharingVariant,
    /// Whether the pruning rules of §4.4 (Theorems 3–5 plus the early-exit
    /// upper bound) are applied. With pruning off the whole ranked list is
    /// scanned and every tuple's exact `Pr^k` is reported.
    pub pruning: bool,
    /// How often (in scanned tuples) the early-exit upper bound is
    /// recomputed. The bound costs `O(|pool|·k)`, so it is checked
    /// periodically rather than per tuple.
    pub ub_check_interval: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            variant: SharingVariant::Lazy,
            pruning: true,
            ub_check_interval: 64,
        }
    }
}

impl EngineOptions {
    /// Options with a specific sharing variant, pruning on.
    pub fn with_variant(variant: SharingVariant) -> Self {
        EngineOptions {
            variant,
            ..Default::default()
        }
    }

    /// Options with pruning disabled (full scan).
    pub fn without_pruning(variant: SharingVariant) -> Self {
        EngineOptions {
            variant,
            pruning: false,
            ..Default::default()
        }
    }
}

/// One stage of the lowered execution pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStage {
    /// Pull tuples from a [`RankedSource`](ptk_access::RankedSource) in
    /// ranking order (a materialized view is the `ViewSource` special
    /// case).
    RankedRetrieval,
    /// Fold each tuple into the compressed dominant-set pool: independents
    /// as themselves, rule members into one rule-tuple per rule
    /// (Corollaries 1–2).
    RuleCompression,
    /// Maintain the subset-probability DP over the compressed pool, sharing
    /// row prefixes between consecutive steps.
    PrefixSharedDp {
        /// The prefix-sharing policy in force.
        variant: SharingVariant,
    },
    /// The §4.4 pruning rules: Theorems 3–4 skip tuples, Theorem 5 and the
    /// periodic upper-bound check stop retrieval.
    Pruning {
        /// Cadence, in scanned tuples, of the upper-bound check.
        ub_check_interval: usize,
    },
    /// Emit tuples whose `Pr^k` passes the threshold(s).
    AnswerEmission {
        /// Number of thresholds served by the single scan.
        thresholds: usize,
    },
    /// Maintain the generating-function coefficient row over the compressed
    /// pool with the O(k) incremental convolve/deconvolve recurrence
    /// (non-PT-k semantics; replaces [`PlanStage::PrefixSharedDp`], which
    /// remains the refold fallback).
    GfRows {
        /// The refold fallback's prefix-sharing policy.
        variant: SharingVariant,
    },
    /// The non-PT-k semantics' finisher over the scan's coefficients:
    /// always unpruned — the §4.4 bounds are sound for `Pr^k` thresholds
    /// only.
    SemanticsFinish {
        /// The semantics being answered.
        semantics: RankSemantics,
    },
}

/// A malformed PT-k request, rejected before any retrieval happens.
///
/// Returned by the fallible plan constructors ([`PtkPlan::try_new`],
/// [`PtkPlan::try_multi`]); the panicking constructors ([`PtkPlan::new`],
/// [`PtkPlan::multi`]) abort with the same messages. Long-lived callers —
/// the SQL layer, the `ptk serve` daemon — must use the fallible forms so
/// user-supplied parameters yield a clean error, never a process abort.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The query depth was zero.
    ZeroK,
    /// A multi-threshold plan was requested with no thresholds at all.
    EmptyThresholds,
    /// A threshold was NaN or outside `(0, 1]`.
    InvalidThreshold {
        /// The offending value (NaN-safe: rendered verbatim).
        value: f64,
    },
    /// A PT-k plan was requested without any probability threshold.
    MissingThreshold,
    /// A probability threshold was supplied for a semantics that takes
    /// none (thresholds parameterize PT-k only).
    ThresholdNotApplicable {
        /// The semantics the threshold was (wrongly) attached to.
        semantics: RankSemantics,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroK => f.write_str("top-k queries require k >= 1"),
            PlanError::EmptyThresholds => f.write_str("at least one threshold is required"),
            PlanError::InvalidThreshold { value } => {
                write!(f, "PT-k thresholds must be in (0, 1], got {value}")
            }
            PlanError::MissingThreshold => {
                f.write_str("PT-k requires a probability threshold in (0, 1]")
            }
            PlanError::ThresholdNotApplicable { semantics } => {
                write!(
                    f,
                    "{semantics} takes no probability threshold; thresholds parameterize PTK only"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A validated, executable PT-k query plan.
///
/// Build one with [`PtkPlan::try_new`] (single threshold),
/// [`PtkPlan::try_multi`] (one scan serving a threshold sweep), or
/// [`PtkPlan::from_query`] (from a parsed [`PtkQuery`]), then run it with
/// [`PtkExecutor`](crate::PtkExecutor). [`PtkPlan::new`] and
/// [`PtkPlan::multi`] are the historical panicking equivalents.
#[derive(Debug, Clone)]
pub struct PtkPlan {
    k: usize,
    thresholds: Vec<f64>,
    options: EngineOptions,
    semantics: RankSemantics,
}

impl PtkPlan {
    /// Plans a PT-k query with a single threshold.
    ///
    /// # Panics
    /// Panics if `k == 0` or `threshold` is not in `(0, 1]`. Use
    /// [`PtkPlan::try_new`] when the parameters come from user input.
    pub fn new(k: usize, threshold: f64, options: &EngineOptions) -> PtkPlan {
        PtkPlan::multi(k, &[threshold], options)
    }

    /// Plans a top-k query answered for several thresholds in one scan.
    ///
    /// The scan is keyed to the *smallest* threshold (the most demanding
    /// one — any tuple prunable there is prunable for every larger
    /// threshold), so one pass serves the whole sweep.
    ///
    /// # Panics
    /// Panics if `k == 0`, `thresholds` is empty, or any threshold is
    /// outside `(0, 1]`. Use [`PtkPlan::try_multi`] when the parameters
    /// come from user input.
    pub fn multi(k: usize, thresholds: &[f64], options: &EngineOptions) -> PtkPlan {
        match PtkPlan::try_multi(k, thresholds, options) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`PtkPlan::new`]: rejects `k == 0` and thresholds
    /// outside `(0, 1]` (including NaN) with a typed [`PlanError`].
    pub fn try_new(
        k: usize,
        threshold: f64,
        options: &EngineOptions,
    ) -> Result<PtkPlan, PlanError> {
        PtkPlan::try_multi(k, &[threshold], options)
    }

    /// Fallible form of [`PtkPlan::multi`]: rejects `k == 0`, an empty
    /// threshold list, and any threshold outside `(0, 1]` (including NaN)
    /// with a typed [`PlanError`].
    pub fn try_multi(
        k: usize,
        thresholds: &[f64],
        options: &EngineOptions,
    ) -> Result<PtkPlan, PlanError> {
        if k == 0 {
            return Err(PlanError::ZeroK);
        }
        if thresholds.is_empty() {
            return Err(PlanError::EmptyThresholds);
        }
        for &p in thresholds {
            // NaN fails `p > 0.0`, so it is rejected here too.
            if !(p > 0.0 && p <= 1.0) {
                return Err(PlanError::InvalidThreshold { value: p });
            }
        }
        Ok(PtkPlan {
            k,
            thresholds: thresholds.to_vec(),
            options: *options,
            semantics: RankSemantics::Ptk,
        })
    }

    /// Plans a query under an explicit [`RankSemantics`].
    ///
    /// PT-k requires a threshold (its answer *is* "every tuple passing
    /// `p`"); every other semantics takes none — its answer shape is fixed
    /// by `k` alone — and runs unpruned, because the §4.4 bounds are sound
    /// for `Pr^k` thresholds only (the executor enforces this regardless
    /// of `options.pruning`).
    pub fn try_semantics(
        semantics: RankSemantics,
        k: usize,
        threshold: Option<f64>,
        options: &EngineOptions,
    ) -> Result<PtkPlan, PlanError> {
        match (semantics, threshold) {
            (RankSemantics::Ptk, Some(p)) => PtkPlan::try_new(k, p, options),
            (RankSemantics::Ptk, None) => Err(PlanError::MissingThreshold),
            (_, Some(_)) => Err(PlanError::ThresholdNotApplicable { semantics }),
            (_, None) => {
                if k == 0 {
                    return Err(PlanError::ZeroK);
                }
                Ok(PtkPlan {
                    k,
                    thresholds: Vec::new(),
                    options: *options,
                    semantics,
                })
            }
        }
    }

    /// Plans a parsed [`PtkQuery`]. The query's predicate and ranking are
    /// applied when the view/source is built; the plan takes the depth and
    /// threshold. Infallible because [`PtkQuery`] enforces the same
    /// invariants at construction.
    pub fn from_query(query: &PtkQuery, options: &EngineOptions) -> PtkPlan {
        PtkPlan::new(query.k(), query.threshold().value(), options)
    }

    /// A stable 64-bit fingerprint of the plan: FNV-1a over the ranking
    /// semantics, `k`, the thresholds (exact bit patterns, in the caller's
    /// order) and every [`EngineOptions`] field. Two plans with equal fingerprints execute
    /// the identical stage pipeline over whatever source they are given,
    /// so the fingerprint — combined with an identifier for the data
    /// snapshot (the serve daemon's snapshot epoch) — keys a result cache.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: &mut u64, v: u64) {
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            for b in v.to_le_bytes() {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let semantics_tag = RankSemantics::ALL
            .iter()
            .position(|&s| s == self.semantics)
            .expect("every semantics is in ALL") as u64;
        mix(&mut h, semantics_tag);
        mix(&mut h, self.k as u64);
        mix(&mut h, self.thresholds.len() as u64);
        for &p in &self.thresholds {
            mix(&mut h, p.to_bits());
        }
        mix(&mut h, self.options.variant as u64);
        mix(&mut h, u64::from(self.options.pruning));
        mix(&mut h, self.options.ub_check_interval as u64);
        h
    }

    /// The query depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The thresholds served by the scan, in the caller's order.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The engine options in force.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The ranking semantics this plan answers.
    pub fn semantics(&self) -> RankSemantics {
        self.semantics
    }

    /// The threshold the scan's pruning machinery is keyed to: the smallest
    /// one requested.
    pub fn scan_threshold(&self) -> f64 {
        self.thresholds
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The lowered stage pipeline, in execution order.
    pub fn stages(&self) -> Vec<PlanStage> {
        if self.semantics != RankSemantics::Ptk {
            return vec![
                PlanStage::RankedRetrieval,
                PlanStage::RuleCompression,
                PlanStage::GfRows {
                    variant: self.options.variant,
                },
                PlanStage::SemanticsFinish {
                    semantics: self.semantics,
                },
            ];
        }
        let mut stages = vec![
            PlanStage::RankedRetrieval,
            PlanStage::RuleCompression,
            PlanStage::PrefixSharedDp {
                variant: self.options.variant,
            },
        ];
        if self.options.pruning {
            stages.push(PlanStage::Pruning {
                ub_check_interval: self.options.ub_check_interval,
            });
        }
        stages.push(PlanStage::AnswerEmission {
            thresholds: self.thresholds.len(),
        });
        stages
    }

    /// A one-line rendering of the pipeline, for `EXPLAIN`-style output.
    /// Renders the actual semantics stage: PT-k keeps its historical
    /// `dp[...]`/pruning/emit pipeline verbatim; the other semantics show
    /// the generating-function stage and say they run unpruned.
    pub fn describe(&self) -> String {
        if self.semantics != RankSemantics::Ptk {
            return format!(
                "ranked-retrieval -> rule-compression -> gf[{}, k={}] -> {} (unpruned: no sound bounds)",
                self.options.variant.paper_name(),
                self.k,
                self.semantics.stage_label()
            );
        }
        let mut out = format!(
            "ranked-retrieval -> rule-compression -> dp[{}, k={}]",
            self.options.variant.paper_name(),
            self.k
        );
        if self.options.pruning {
            out.push_str(&format!(
                " -> pruning[T3-T5, ub every {}]",
                self.options.ub_check_interval
            ));
        }
        if self.thresholds.len() == 1 {
            out.push_str(&format!(" -> emit[p >= {}]", self.thresholds[0]));
        } else {
            out.push_str(&format!(
                " -> emit[{} thresholds, scan p >= {}]",
                self.thresholds.len(),
                self.scan_threshold()
            ));
        }
        out
    }

    /// The `EXPLAIN ANALYZE` rendering: one line per [`PlanStage`],
    /// annotated with the actual execution counters from `snapshot` and —
    /// when `include_timings` is set — the wall-clock phase times.
    ///
    /// The annotations read the very same `engine.*` counter and
    /// `engine.phase.*` timing names that the `--stats` renderings expose,
    /// so the two views of one recorded run agree by construction. With
    /// `include_timings` off the rendering is timing-free and therefore
    /// deterministic (DESIGN.md §7).
    pub fn explain_analyze(&self, snapshot: &Snapshot, include_timings: bool) -> String {
        fn push_timing(out: &mut String, snapshot: &Snapshot, name: &str, include: bool) {
            if !include {
                return;
            }
            if let Some(t) = snapshot.timings.get(name) {
                let _ = write!(out, " [{:.3} ms]", t.total_nanos as f64 / 1e6);
            }
        }
        let stats = ExecStats::from_snapshot(snapshot);
        let mut out = String::new();
        for stage in self.stages() {
            match stage {
                PlanStage::RankedRetrieval => {
                    let _ = write!(out, "ranked-retrieval: scanned={}", stats.scanned);
                    push_timing(
                        &mut out,
                        snapshot,
                        "engine.phase.retrieval",
                        include_timings,
                    );
                }
                PlanStage::RuleCompression => {
                    let _ = write!(
                        out,
                        "rule-compression: rules_compressed={}",
                        stats.rules_compressed
                    );
                    push_timing(&mut out, snapshot, "engine.phase.reorder", include_timings);
                }
                PlanStage::PrefixSharedDp { variant } => {
                    let _ = write!(
                        out,
                        "dp[{}, k={}]: evaluated={} dp_cells={} entries_recomputed={}",
                        variant.paper_name(),
                        self.k,
                        stats.evaluated,
                        stats.dp_cells,
                        stats.entries_recomputed
                    );
                    push_timing(&mut out, snapshot, "engine.phase.dp", include_timings);
                }
                PlanStage::Pruning { ub_check_interval } => {
                    let stop = match stats.stop {
                        Some(crate::stats::StopReason::TotalTopK) => "total-topk",
                        Some(crate::stats::StopReason::UpperBound) => "upper-bound",
                        None => "none",
                    };
                    let _ = write!(
                        out,
                        "pruning[T3-T5, ub every {ub_check_interval}]: pruned_membership={} pruned_rule={} stop={stop}",
                        stats.pruned_membership, stats.pruned_rule
                    );
                    push_timing(&mut out, snapshot, "engine.phase.bound", include_timings);
                }
                PlanStage::AnswerEmission { thresholds } => {
                    let _ = write!(
                        out,
                        "emit[{} threshold{}, scan p >= {}]: answers={}",
                        thresholds,
                        if thresholds == 1 { "" } else { "s" },
                        self.scan_threshold(),
                        snapshot.counter(counters::ANSWERS)
                    );
                }
                PlanStage::GfRows { variant } => {
                    let _ = write!(
                        out,
                        "gf[{}, k={}]: evaluated={} dp_cells={} rows_incremental={} rows_refolded={}",
                        variant.paper_name(),
                        self.k,
                        stats.evaluated,
                        stats.dp_cells,
                        snapshot.counter(counters::GF_ROWS_INCREMENTAL),
                        snapshot.counter(counters::GF_ROWS_REFOLDED)
                    );
                    push_timing(&mut out, snapshot, "engine.phase.dp", include_timings);
                }
                PlanStage::SemanticsFinish { semantics } => {
                    let _ = write!(
                        out,
                        "{} (unpruned: no sound bounds): answers={}",
                        semantics.stage_label(),
                        snapshot.counter(counters::ANSWERS)
                    );
                    push_timing(&mut out, snapshot, "engine.phase.bound", include_timings);
                }
            }
            out.push('\n');
        }
        let _ = write!(
            out,
            "total: scanned={} evaluated={} answers={}",
            stats.scanned,
            stats.evaluated,
            snapshot.counter(counters::ANSWERS)
        );
        push_timing(&mut out, snapshot, "engine.query", include_timings);
        out.push('\n');
        out
    }
}

/// A batch of independent PT-k plans to be evaluated against one shared
/// ranked snapshot — the unit of work of
/// [`PtkExecutor::execute_batch`](crate::PtkExecutor::execute_batch).
///
/// Plans may differ in `k`, thresholds and [`EngineOptions`]; the batch
/// only fixes their order, which is the order results come back in
/// (independent of how many threads evaluate them).
#[derive(Debug, Clone)]
pub struct PtkBatch {
    plans: Vec<PtkPlan>,
}

impl PtkBatch {
    /// The plans, in submission order.
    pub fn plans(&self) -> &[PtkPlan] {
        &self.plans
    }

    /// Number of plans in the batch.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the batch holds no plans (never true for batches built by
    /// [`PtkPlan::batch`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// A multi-line rendering of the batched pipelines, one
    /// [`PtkPlan::describe`] line per plan, for `EXPLAIN`-style output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, plan) in self.plans.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("[{i}] {}", plan.describe()));
        }
        out
    }
}

impl PtkPlan {
    /// Lowers a slice of plans into a [`PtkBatch`] for the batch executor.
    ///
    /// # Panics
    /// Panics if `plans` is empty.
    pub fn batch(plans: &[PtkPlan]) -> PtkBatch {
        assert!(!plans.is_empty(), "a batch needs at least one plan");
        PtkBatch {
            plans: plans.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_reflect_options() {
        let plan = PtkPlan::new(3, 0.4, &EngineOptions::default());
        assert_eq!(
            plan.stages(),
            vec![
                PlanStage::RankedRetrieval,
                PlanStage::RuleCompression,
                PlanStage::PrefixSharedDp {
                    variant: SharingVariant::Lazy
                },
                PlanStage::Pruning {
                    ub_check_interval: 64
                },
                PlanStage::AnswerEmission { thresholds: 1 },
            ]
        );
        let plan = PtkPlan::new(3, 0.4, &EngineOptions::without_pruning(SharingVariant::Rc));
        assert!(!plan
            .stages()
            .iter()
            .any(|s| matches!(s, PlanStage::Pruning { .. })));
    }

    #[test]
    fn multi_scan_threshold_is_the_minimum() {
        let plan = PtkPlan::multi(2, &[0.9, 0.35, 0.5], &EngineOptions::default());
        assert_eq!(plan.scan_threshold(), 0.35);
        assert_eq!(plan.thresholds(), &[0.9, 0.35, 0.5]);
    }

    #[test]
    fn describe_names_the_variant_and_threshold() {
        let plan = PtkPlan::new(2, 0.35, &EngineOptions::default());
        let d = plan.describe();
        assert!(d.contains("RC+LR"), "{d}");
        assert!(d.contains("p >= 0.35"), "{d}");
        let plan = PtkPlan::multi(2, &[0.2, 0.8], &EngineOptions::default());
        assert!(plan.describe().contains("2 thresholds"));
    }

    #[test]
    fn explain_analyze_reads_the_stats_counter_names() {
        use ptk_obs::Recorder as _;
        let plan = PtkPlan::new(2, 0.35, &EngineOptions::default());
        let metrics = ptk_obs::Metrics::new();
        let stats = ExecStats {
            scanned: 10,
            evaluated: 6,
            pruned_membership: 3,
            pruned_membership_block: 1,
            pruned_rule: 1,
            pruned_rule_whole: 0,
            dp_cells: 42,
            entries_recomputed: 21,
            rules_compressed: 2,
            stop: Some(crate::stats::StopReason::UpperBound),
        };
        stats.record_to(&metrics);
        metrics.add(counters::ANSWERS, 4);
        let text = plan.explain_analyze(&metrics.snapshot(), false);
        assert!(text.contains("ranked-retrieval: scanned=10"), "{text}");
        assert!(text.contains("rules_compressed=2"), "{text}");
        assert!(
            text.contains("dp[RC+LR, k=2]: evaluated=6 dp_cells=42 entries_recomputed=21"),
            "{text}"
        );
        assert!(
            text.contains("pruned_membership=3 pruned_rule=1 stop=upper-bound"),
            "{text}"
        );
        assert!(text.contains("answers=4"), "{text}");
        assert!(
            !text.contains("ms]"),
            "timing-free rendering has no wall clock: {text}"
        );
        let timed = plan.explain_analyze(&metrics.snapshot(), true);
        assert!(timed.contains("total: scanned=10 evaluated=6 answers=4"));
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        let opts = EngineOptions::default();
        assert_eq!(
            PtkPlan::try_new(0, 0.5, &opts).unwrap_err(),
            PlanError::ZeroK
        );
        assert_eq!(
            PtkPlan::try_multi(2, &[], &opts).unwrap_err(),
            PlanError::EmptyThresholds
        );
        for bad in [0.0, -0.25, 1.5, f64::NAN, f64::INFINITY] {
            let err = PtkPlan::try_new(2, bad, &opts).unwrap_err();
            match err {
                PlanError::InvalidThreshold { value } => {
                    assert_eq!(value.to_bits(), bad.to_bits());
                }
                other => panic!("expected InvalidThreshold, got {other:?}"),
            }
            // The rendering keeps the historical panic wording, so callers
            // that matched on messages see no change.
            assert!(err.to_string().contains("(0, 1]"), "{err}");
        }
        assert!(PtkPlan::try_new(1, 1.0, &opts).is_ok());
        assert!(PtkPlan::try_multi(3, &[0.2, 0.9], &opts).is_ok());
    }

    #[test]
    fn fingerprint_is_stable_and_separates_plans() {
        let opts = EngineOptions::default();
        let a = PtkPlan::new(2, 0.35, &opts);
        // Same parameters, same fingerprint — across independent builds.
        assert_eq!(a.fingerprint(), PtkPlan::new(2, 0.35, &opts).fingerprint());
        // Any parameter change moves the fingerprint.
        let variants = [
            PtkPlan::new(3, 0.35, &opts),
            PtkPlan::new(2, 0.36, &opts),
            PtkPlan::multi(2, &[0.35, 0.5], &opts),
            PtkPlan::new(2, 0.35, &EngineOptions::with_variant(SharingVariant::Rc)),
            PtkPlan::new(
                2,
                0.35,
                &EngineOptions::without_pruning(SharingVariant::Lazy),
            ),
            PtkPlan::new(
                2,
                0.35,
                &EngineOptions {
                    ub_check_interval: 128,
                    ..EngineOptions::default()
                },
            ),
        ];
        for (i, other) in variants.iter().enumerate() {
            assert_ne!(a.fingerprint(), other.fingerprint(), "variant {i}");
        }
        // Threshold order matters (answers come back in threshold order).
        assert_ne!(
            PtkPlan::multi(2, &[0.2, 0.8], &opts).fingerprint(),
            PtkPlan::multi(2, &[0.8, 0.2], &opts).fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_is_rejected() {
        let _ = PtkPlan::new(0, 0.5, &EngineOptions::default());
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn out_of_range_threshold_is_rejected() {
        let _ = PtkPlan::new(2, 1.5, &EngineOptions::default());
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn empty_thresholds_are_rejected() {
        let _ = PtkPlan::multi(2, &[], &EngineOptions::default());
    }

    #[test]
    fn batch_keeps_order_and_describes_each_plan() {
        let batch = PtkPlan::batch(&[
            PtkPlan::new(2, 0.35, &EngineOptions::default()),
            PtkPlan::new(5, 0.5, &EngineOptions::with_variant(SharingVariant::Rc)),
        ]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.plans()[0].k(), 2);
        assert_eq!(batch.plans()[1].k(), 5);
        let d = batch.describe();
        assert!(d.starts_with("[0] "), "{d}");
        assert!(d.contains("\n[1] "), "{d}");
        assert!(d.contains("RC+LR") && d.contains("RC"), "{d}");
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn empty_batches_are_rejected() {
        let _ = PtkPlan::batch(&[]);
    }
}
