//! # `ptk-engine` — the exact PT-k query engine
//!
//! The paper's primary contribution (§4): answering probabilistic threshold
//! top-k queries with **one scan** of the ranked tuple list instead of
//! enumerating the exponentially many possible worlds.
//!
//! Since the planner/executor unification, every entry point — view-based,
//! source-based, single- or multi-threshold — is a thin wrapper over one
//! pipeline: a [`PtkPlan`] validates the request and lowers it into the
//! stage list of DESIGN.md §9, and a [`PtkExecutor`] drives that plan over
//! any [`RankedSource`](ptk_access::RankedSource). The pieces, each in its
//! own module:
//!
//! * [`dp`] — the subset-probability (Poisson-binomial) dynamic program of
//!   Theorem 2, truncated at `k`;
//! * [`PtkPlan`] / [`PlanStage`] — planning and validation: ranked
//!   retrieval, rule compression (Corollaries 1–2), prefix-shared DP with
//!   the reordering strategies of §4.3.2 (selected by [`SharingVariant`]),
//!   pruning (§4.4), answer emission;
//! * [`PtkExecutor`] — the full algorithm of Figure 3 with the pruning
//!   rules of Theorems 3–5 and an early-exit upper bound, over any ranked
//!   source;
//! * [`evaluate_ptk`] / [`evaluate_ptk_source`] — the classic view-based
//!   and source-based entry points, now wrappers over the executor;
//! * [`Scanner`] — the step-at-a-time view of the compressed dominant set,
//!   kept for instrumentation and the rankers;
//! * [`topk_probabilities`] / [`position_probabilities`] — full-scan
//!   variants exposing the exact distributions (also the building block for
//!   U-KRanks in `ptk-rankers`).
//!
//! ```
//! use ptk_core::RankedView;
//! use ptk_engine::{evaluate_ptk, EngineOptions};
//!
//! // The paper's running example (Table 1), ranked by duration:
//! // R1 (0.3), R2 (0.4), R5 (0.8), R3 (0.5), R4 (1.0), R6 (0.2),
//! // with rules R2⊕R3 and R5⊕R6.
//! let view = RankedView::from_ranked_probs(
//!     &[0.3, 0.4, 0.8, 0.5, 1.0, 0.2],
//!     &[vec![1, 3], vec![2, 5]],
//! ).unwrap();
//!
//! // PT-2 query with p = 0.35 returns {R2, R5, R3} (Example 1).
//! let result = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
//! assert_eq!(result.answer_ranks(), vec![1, 2, 3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dp;
mod exact;
mod exec;
mod gf;
mod layout;
mod plan;
mod scanner;
mod stats;
mod stream;

pub use exact::{
    evaluate_ptk, evaluate_ptk_multi, evaluate_ptk_recorded, position_probabilities,
    topk_probabilities, topk_probability_profile,
};
pub use exec::{AnswerTuple, PtkExecutor, PtkResult};
pub use gf::{RankSemantics, SemanticsAnswer, SemanticsError, SemanticsRow, UTOPK_MAX_STATES};
pub use plan::{EngineOptions, PlanError, PlanStage, PtkBatch, PtkPlan, SharingVariant};
pub use scanner::{Entry, Scanner, StepRow};
pub use stats::{counters, ExecStats, StopReason};
pub use stream::{
    evaluate_ptk_multi_source, evaluate_ptk_source, evaluate_ptk_source_recorded, StreamAnswer,
    StreamOptions, StreamPtkResult,
};
