//! View-based PT-k entry points (Figure 3 of the paper).
//!
//! Since the planner/executor unification these are thin wrappers: each one
//! builds a [`PtkPlan`] and runs the shared [`PtkExecutor`] over a
//! [`ViewSource`] wrapping the materialized
//! [`RankedView`] — the view path is literally the source path specialized
//! to in-memory retrieval, and the parity tests pin the two to bit
//! equality. The full-distribution helpers ([`topk_probabilities`],
//! [`position_probabilities`], [`topk_probability_profile`]) drive the
//! [`Scanner`] directly because they need every per-rank DP row, not just
//! the thresholded answers.

use ptk_access::ViewSource;
use ptk_core::RankedView;
use ptk_obs::{Noop, Recorder};

use crate::exec::{PtkExecutor, PtkResult};
use crate::plan::{EngineOptions, PtkPlan, SharingVariant};
use crate::scanner::Scanner;
use crate::stats::ExecStats;

/// Answers a PT-k query: returns the tuples (as ranked positions, via
/// [`PtkResult::answer_ranks`]) whose top-k probability is at least
/// `threshold`.
///
/// This is the paper's exact algorithm (Figure 3): one scan of the ranked
/// list, rule-tuple compression, prefix-shared subset-probability DP, and —
/// when [`EngineOptions::pruning`] is set — the pruning rules of §4.4.
/// Delegates to [`PtkExecutor`] over a [`ViewSource`].
///
/// # Panics
/// Panics if `k == 0` or `threshold` is not in `(0, 1]`.
pub fn evaluate_ptk(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &EngineOptions,
) -> PtkResult {
    evaluate_ptk_recorded(view, k, threshold, options, &Noop)
}

/// [`evaluate_ptk`] with observability: execution counters (under the
/// [`counters`](crate::counters) names), the answer count, and per-phase
/// wall-clock spans (`engine.query`, `engine.phase.retrieval`,
/// `engine.phase.reorder`, `engine.phase.dp`, `engine.phase.bound`) are
/// recorded into `recorder`. With a disabled recorder this is exactly
/// [`evaluate_ptk`] — no clock is ever read.
///
/// # Panics
/// Panics if `k == 0` or `threshold` is not in `(0, 1]`.
pub fn evaluate_ptk_recorded(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &EngineOptions,
    recorder: &dyn Recorder,
) -> PtkResult {
    let plan = PtkPlan::new(k, threshold, options);
    let mut source = ViewSource::new(view);
    let mut result = PtkExecutor::with_recorder(&plan, recorder).execute(&mut source);
    // A view's scan ranks are its ranked positions; pad the tail the early
    // stop never scanned so `probabilities[pos]` indexes the whole view.
    result.probabilities.resize(view.len(), None);
    result
}

/// Computes the exact top-k probability of **every** tuple in the view
/// (no threshold, no pruning): `result[pos] = Pr^k` of the tuple at `pos`.
///
/// Used by the sampling-quality experiments (ground truth) and by callers
/// that want the full distribution rather than a thresholded answer set.
pub fn topk_probabilities(
    view: &RankedView,
    k: usize,
    variant: SharingVariant,
) -> (Vec<f64>, ExecStats) {
    let mut scanner = Scanner::new(view, k, variant);
    let mut out = Vec::with_capacity(view.len());
    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let step = scanner.step().expect("position() was Some");
        out.push(prob * step.partial_sum());
    }
    let stats = ExecStats {
        scanned: view.len(),
        evaluated: view.len(),
        dp_cells: scanner.dp_cells(),
        entries_recomputed: scanner.entries_recomputed(),
        ..Default::default()
    };
    (out, stats)
}

/// Computes the exact *position* probabilities of every tuple:
/// `result[pos][j]` is the probability that the tuple at ranked position
/// `pos` is ranked exactly `j+1`-th in a possible world (Eq. 3), for `j < k`.
///
/// This is the quantity U-KRanks maximizes per rank; it falls out of the
/// same scan because `Pr(t_i, j) = Pr(t_i) · Pr(T(t_i), j−1)`.
pub fn position_probabilities(
    view: &RankedView,
    k: usize,
    variant: SharingVariant,
) -> Vec<Vec<f64>> {
    let mut scanner = Scanner::new(view, k, variant);
    let mut out = Vec::with_capacity(view.len());
    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let step = scanner.step().expect("position() was Some");
        out.push(step.row.iter().map(|&s| prob * s).collect());
    }
    out
}

/// Answers the same top-k query for several probability thresholds in one
/// scan: `result[i]` is the PT-k answer set (as ranked positions) for
/// `thresholds[i]`.
///
/// The scan runs the pruning machinery keyed to the *smallest* threshold
/// (the most demanding one — any tuple prunable there is prunable for every
/// larger threshold), so one pass serves the whole threshold sweep. This is
/// what the Figure 4(d)/5(d) experiments do implicitly, and what an
/// interactive client exploring `p` wants. Delegates to [`PtkExecutor`]
/// through a multi-threshold [`PtkPlan`]; see
/// [`evaluate_ptk_multi_source`](crate::evaluate_ptk_multi_source) for the
/// same sweep over any source.
///
/// # Panics
/// Panics if `k == 0`, `thresholds` is empty, or any threshold is outside
/// `(0, 1]`.
pub fn evaluate_ptk_multi(
    view: &RankedView,
    k: usize,
    thresholds: &[f64],
    options: &EngineOptions,
) -> Vec<Vec<usize>> {
    let plan = PtkPlan::multi(k, thresholds, options);
    let mut source = ViewSource::new(view);
    let result = PtkExecutor::new(&plan).execute(&mut source);
    thresholds
        .iter()
        .map(|&p| result.answers_at(p).iter().map(|a| a.rank).collect())
        .collect()
}

/// Computes the full top-k probability *profile* of every tuple in one
/// scan: `result[pos][k-1] = Pr^k` of the tuple at `pos`, for every depth
/// `k ∈ 1..=max_k`.
///
/// By Eq. 4, `Pr^k(t) = Pr(t) · Σ_{j<k} Pr(T(t), j)`, so the whole profile
/// is the prefix-sum of the position-probability row — one scan serves all
/// depths at once, where calling [`topk_probabilities`] per `k` would cost
/// `max_k` scans.
pub fn topk_probability_profile(
    view: &RankedView,
    max_k: usize,
    variant: SharingVariant,
) -> Vec<Vec<f64>> {
    let mut scanner = Scanner::new(view, max_k, variant);
    let mut out = Vec::with_capacity(view.len());
    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let step = scanner.step().expect("position() was Some");
        let mut acc = 0.0;
        let profile: Vec<f64> = step
            .row
            .iter()
            .map(|&s| {
                acc += s;
                prob * acc
            })
            .collect();
        out.push(profile);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Panda example, ranked: R1 (0.3), R2 (0.4), R5 (0.8), R3 (0.5),
    /// R4 (1.0), R6 (0.2); rules {1,3} and {2,5}.
    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn panda_topk_probabilities_match_table_3() {
        let view = panda();
        let (pr, stats) = topk_probabilities(&view, 2, SharingVariant::Lazy);
        let expected = [0.3, 0.4, 0.704, 0.38, 0.202, 0.014];
        for (i, e) in expected.iter().enumerate() {
            assert!((pr[i] - e).abs() < 1e-12, "pos {i}: {} vs {e}", pr[i]);
        }
        assert_eq!(stats.scanned, 6);
        assert_eq!(stats.evaluated, 6);
    }

    #[test]
    fn panda_ptk_matches_example_1() {
        let view = panda();
        for pruning in [false, true] {
            let options = EngineOptions {
                pruning,
                ub_check_interval: 1,
                ..Default::default()
            };
            let result = evaluate_ptk(&view, 2, 0.35, &options);
            assert_eq!(result.answer_ranks(), vec![1, 2, 3], "pruning = {pruning}");
        }
    }

    #[test]
    fn pruned_probabilities_are_below_threshold() {
        let view = panda();
        let result = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
        let ranks = result.answer_ranks();
        for (pos, p) in result.probabilities.iter().enumerate() {
            if let Some(p) = p {
                let is_answer = ranks.contains(&pos);
                assert_eq!(*p >= 0.35, is_answer);
            }
        }
    }

    #[test]
    fn variants_agree_on_answers() {
        let view = panda();
        for variant in [
            SharingVariant::Rc,
            SharingVariant::Aggressive,
            SharingVariant::Lazy,
        ] {
            let result = evaluate_ptk(&view, 2, 0.35, &EngineOptions::with_variant(variant));
            assert_eq!(result.answer_ranks(), vec![1, 2, 3], "{variant:?}");
        }
    }

    #[test]
    fn answers_carry_ids_and_membership() {
        let view = panda();
        let result = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
        for a in &result.answers {
            assert_eq!(a.id, view.tuple(a.rank).id);
            assert_eq!(Some(a.probability), result.probabilities[a.rank]);
            assert!(a.probability <= view.prob(a.rank) + 1e-12);
        }
    }

    #[test]
    fn position_probabilities_row_sums() {
        let view = panda();
        let pos = position_probabilities(&view, 2, SharingVariant::Lazy);
        let (topk, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
        for i in 0..view.len() {
            let s: f64 = pos[i].iter().sum();
            assert!((s - topk[i]).abs() < 1e-12);
        }
        // Pr(R5 ranked first) = 0.336 (see ptk-worlds tests).
        assert!((pos[2][0] - 0.336).abs() < 1e-12);
    }

    #[test]
    fn first_k_tuples_have_prk_equal_membership() {
        let view = RankedView::from_ranked_probs(&[0.9, 0.1, 0.5, 0.7], &[]).unwrap();
        let (pr, _) = topk_probabilities(&view, 3, SharingVariant::Lazy);
        assert!((pr[0] - 0.9).abs() < 1e-12);
        assert!((pr[1] - 0.1).abs() < 1e-12);
        assert!((pr[2] - 0.5).abs() < 1e-12);
        assert!(pr[3] < 0.7);
    }

    #[test]
    fn theorem5_stop_fires() {
        // Many near-certain tuples: once k answers hold nearly all the
        // top-k mass, the scan stops well before the end.
        let probs = vec![0.999; 200];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let result = evaluate_ptk(&view, 5, 0.5, &EngineOptions::default());
        assert!(result.stats.stopped_early());
        assert!(result.stats.scanned < 200);
        assert_eq!(result.answer_ranks(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn upper_bound_stop_fires_without_theorem5() {
        // Moderate probabilities: the top-k mass never concentrates in the
        // answers (many tuples fail), but the partial-sum bound decays to
        // zero, so the UB stop must fire.
        let probs = vec![0.6; 400];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let options = EngineOptions {
            ub_check_interval: 8,
            ..Default::default()
        };
        let result = evaluate_ptk(&view, 5, 0.9, &options);
        assert!(result.stats.stopped_early());
        assert!(
            result.stats.scanned < 400,
            "scanned {}",
            result.stats.scanned
        );
        // Answers must nevertheless be exact: compare against a full scan.
        let (pr, _) = topk_probabilities(&view, 5, SharingVariant::Lazy);
        let expected: Vec<usize> = (0..400).filter(|&i| pr[i] >= 0.9).collect();
        assert_eq!(result.answer_ranks(), expected);
    }

    #[test]
    fn membership_pruning_counts() {
        // A high-probability failing tuple ahead of low-probability tuples
        // triggers Theorem 3 on them.
        let mut probs = vec![0.95; 10];
        probs.extend(vec![0.3; 20]);
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let options = EngineOptions {
            ub_check_interval: 1000,
            ..Default::default()
        };
        let result = evaluate_ptk(&view, 3, 0.5, &options);
        // Exactness first.
        let (pr, _) = topk_probabilities(&view, 3, SharingVariant::Lazy);
        let expected: Vec<usize> = (0..30).filter(|&i| pr[i] >= 0.5).collect();
        assert_eq!(result.answer_ranks(), expected);
        assert!(result.stats.pruned_membership > 0 || result.stats.stopped_early());
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn threshold_validation() {
        let view = panda();
        let _ = evaluate_ptk(&view, 2, 0.0, &EngineOptions::default());
    }

    #[test]
    fn empty_view_yields_empty_answer() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let result = evaluate_ptk(&view, 3, 0.5, &EngineOptions::default());
        assert!(result.answers.is_empty());
        assert_eq!(result.stats.scanned, 0);
        assert_eq!(result.answer_mass(), 0.0);
    }

    #[test]
    fn multi_threshold_matches_individual_queries() {
        let view = panda();
        let thresholds = [0.9, 0.35, 0.1, 0.5];
        let multi = evaluate_ptk_multi(&view, 2, &thresholds, &EngineOptions::default());
        for (i, &p) in thresholds.iter().enumerate() {
            let single = evaluate_ptk(&view, 2, p, &EngineOptions::default());
            assert_eq!(multi[i], single.answer_ranks(), "threshold {p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn multi_threshold_rejects_empty() {
        let _ = evaluate_ptk_multi(&panda(), 2, &[], &EngineOptions::default());
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn multi_threshold_rejects_out_of_range_before_scanning() {
        let _ = evaluate_ptk_multi(&panda(), 2, &[0.5, 1.5], &EngineOptions::default());
    }

    #[test]
    fn profile_matches_per_k_scans() {
        let view = panda();
        let profile = topk_probability_profile(&view, 4, SharingVariant::Lazy);
        for k in 1..=4 {
            let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
            for pos in 0..view.len() {
                assert!(
                    (profile[pos][k - 1] - pr[pos]).abs() < 1e-12,
                    "pos {pos} k {k}: {} vs {}",
                    profile[pos][k - 1],
                    pr[pos]
                );
            }
        }
        // Profiles are monotone in k and bounded by membership.
        for (pos, p) in profile.iter().enumerate() {
            for w in p.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            assert!(p[3] <= view.prob(pos) + 1e-12);
        }
    }

    #[test]
    fn k_larger_than_view() {
        let view = panda();
        let result = evaluate_ptk(&view, 100, 0.1, &EngineOptions::default());
        // Every tuple is always in the top-100 of its world when present:
        // Pr^k = Pr(t), so answers are tuples with Pr(t) >= 0.1.
        assert_eq!(result.answer_ranks(), vec![0, 1, 2, 3, 4, 5]);
        for (pos, p) in result.probabilities.iter().enumerate() {
            assert!((p.unwrap() - view.prob(pos)).abs() < 1e-12);
        }
    }
}
