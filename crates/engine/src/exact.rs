//! The exact PT-k algorithm (Figure 3 of the paper).

use ptk_core::RankedView;
use ptk_obs::{Noop, PhaseClock, Recorder};

use crate::dp;
use crate::scanner::{Scanner, SharingVariant};
use crate::stats::{counters, ExecStats, StopReason};

/// Configuration of the exact engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Prefix-sharing variant (§4.3.2). `RC+LR` is the paper's best and the
    /// default.
    pub variant: SharingVariant,
    /// Whether the pruning rules of §4.4 (Theorems 3–5 plus the early-exit
    /// upper bound) are applied. With pruning off the whole ranked list is
    /// scanned and every tuple's exact `Pr^k` is reported.
    pub pruning: bool,
    /// How often (in scanned tuples) the early-exit upper bound is
    /// recomputed. The bound costs `O(|pool|·k)`, so it is checked
    /// periodically rather than per tuple.
    pub ub_check_interval: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            variant: SharingVariant::Lazy,
            pruning: true,
            ub_check_interval: 64,
        }
    }
}

impl EngineOptions {
    /// Options with a specific sharing variant, pruning on.
    pub fn with_variant(variant: SharingVariant) -> Self {
        EngineOptions {
            variant,
            ..Default::default()
        }
    }

    /// Options with pruning disabled (full scan).
    pub fn without_pruning(variant: SharingVariant) -> Self {
        EngineOptions {
            variant,
            pruning: false,
            ..Default::default()
        }
    }
}

/// The result of a PT-k evaluation.
#[derive(Debug, Clone)]
pub struct PtkResult {
    /// Ranked positions whose top-k probability passes the threshold, in
    /// ranking order.
    pub answers: Vec<usize>,
    /// `probabilities[pos]` is `Some(Pr^k)` when the engine computed the
    /// exact top-k probability of the tuple at `pos`, and `None` when the
    /// tuple was pruned (its `Pr^k` is then known to be below the threshold)
    /// or never scanned (ditto, by the early-exit bound).
    pub probabilities: Vec<Option<f64>>,
    /// Execution counters.
    pub stats: ExecStats,
}

impl PtkResult {
    /// Sum of the top-k probabilities of the answers.
    pub fn answer_mass(&self) -> f64 {
        self.answers
            .iter()
            .map(|&p| self.probabilities[p].unwrap_or(0.0))
            .sum()
    }
}

/// Answers a PT-k query: returns the tuples (as ranked positions) whose
/// top-k probability is at least `threshold`.
///
/// This is the paper's exact algorithm (Figure 3): one scan of the ranked
/// list, rule-tuple compression, prefix-shared subset-probability DP, and —
/// when [`EngineOptions::pruning`] is set — the pruning rules of §4.4.
///
/// # Panics
/// Panics if `k == 0` or `threshold` is not in `(0, 1]`.
pub fn evaluate_ptk(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &EngineOptions,
) -> PtkResult {
    evaluate_ptk_recorded(view, k, threshold, options, &Noop)
}

/// [`evaluate_ptk`] with observability: execution counters (under the
/// [`counters`] names), the answer count, and per-phase wall-clock spans
/// (`engine.query`, `engine.phase.dp`, `engine.phase.bound`) are recorded
/// into `recorder`. With a disabled recorder this is exactly
/// [`evaluate_ptk`] — no clock is ever read.
///
/// The view-based engine retrieves from memory, so retrieval is not a
/// phase here; rule-tuple compression and reordering happen inside the
/// scanner's step and are accounted to the DP phase.
///
/// # Panics
/// Panics if `k == 0` or `threshold` is not in `(0, 1]`.
pub fn evaluate_ptk_recorded(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &EngineOptions,
    recorder: &dyn Recorder,
) -> PtkResult {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "PT-k thresholds must be in (0, 1], got {threshold}"
    );
    let _query_span = ptk_obs::span(recorder, "engine.query");
    let mut dp_clock = PhaseClock::new(recorder);
    let mut bound_clock = PhaseClock::new(recorder);
    let mut scanner = Scanner::new(view, k, options.variant);
    let mut probabilities: Vec<Option<f64>> = vec![None; view.len()];
    let mut answers = Vec::new();
    let mut stats = ExecStats::default();

    // Theorem 3 state: the largest membership probability among failed
    // independent tuples scanned so far.
    let mut failed_member_max = 0.0f64;
    // Theorem 4 state, per rule: the largest membership probability among
    // failed members seen so far.
    let mut rule_failed_max = vec![0.0f64; view.rules().len()];
    // Theorem 3(2) state, per rule: whole rule pruned because it is ranked
    // entirely below a failed independent tuple with Pr(t) >= Pr(R).
    let mut rule_failed = vec![false; view.rules().len()];
    // Theorem 5 state: sum of the answers' top-k probabilities.
    let mut answer_mass = 0.0f64;

    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let rule = view.rule_at(pos);

        let mut prune_membership = false;
        let mut prune_rule = false;
        if options.pruning {
            match rule {
                None => {
                    if prob <= failed_member_max {
                        prune_membership = true;
                    }
                }
                Some(h) => {
                    let idx = h.index();
                    let projection = &view.rules()[idx];
                    // First encounter of the rule: Theorem 3(2).
                    if projection.first() == pos && projection.mass <= failed_member_max {
                        rule_failed[idx] = true;
                    }
                    if rule_failed[idx] || prob <= rule_failed_max[idx] {
                        prune_rule = true;
                    }
                }
            }
        }

        stats.scanned += 1;
        if prune_membership || prune_rule {
            if prune_membership {
                stats.pruned_membership += 1;
            } else {
                stats.pruned_rule += 1;
            }
            scanner.step_skip();
        } else {
            let prk = dp_clock.time(|| {
                let step = scanner.step().expect("position() was Some");
                prob * step.partial_sum()
            });
            stats.evaluated += 1;
            probabilities[pos] = Some(prk);
            if prk >= threshold {
                answers.push(pos);
                answer_mass += prk;
            } else if options.pruning {
                match rule {
                    None => failed_member_max = failed_member_max.max(prob),
                    Some(h) => {
                        let m = &mut rule_failed_max[h.index()];
                        *m = m.max(prob);
                    }
                }
            }
        }

        if options.pruning {
            // Theorem 5: the total top-k probability over all tuples is at
            // most k, so once the answers hold more than k − p of it, no
            // other tuple can reach p.
            if answer_mass > k as f64 - threshold {
                stats.stop = Some(StopReason::TotalTopK);
                break;
            }
            // Early-exit upper bound (line 6 of Figure 3), checked
            // periodically: if even the most favourable future tuple cannot
            // reach the threshold, stop.
            if stats.scanned % options.ub_check_interval.max(1) == 0
                && bound_clock.time(|| future_upper_bound(&scanner)) < threshold
            {
                stats.stop = Some(StopReason::UpperBound);
                break;
            }
        }
    }

    stats.dp_cells = scanner.dp_cells();
    stats.entries_recomputed = scanner.entries_recomputed();
    dp_clock.flush(recorder, "engine.phase.dp");
    bound_clock.flush(recorder, "engine.phase.bound");
    stats.record_to(recorder);
    recorder.add(counters::ANSWERS, answers.len() as u64);
    PtkResult {
        answers,
        probabilities,
        stats,
    }
}

/// An upper bound on `Pr^k(t')` for every tuple `t'` not yet scanned.
///
/// For a future independent tuple, the dominant set contains at least the
/// whole current pool, so `Σ_{j<k} Pr(S, j)` over the pool bounds its Eq. 4
/// factor (the partial sum is non-increasing as elements are added or
/// gain mass). For a future member of an open rule `R`, the dominant set
/// excludes `R`'s own rule-tuple, so the bound deconvolves that entry out.
/// Membership probability is bounded by 1.
fn future_upper_bound(scanner: &Scanner<'_>) -> f64 {
    let pool = scanner.pool_row();
    let mut ub: f64 = dp::partial_sum(&pool);
    for (_, mass) in scanner.open_rules() {
        let without = match dp::deconvolve(&pool, mass) {
            // Slack covers mass the ill-conditioned inversion can shed
            // without tripping its own guards; losing it here would make
            // the bound non-conservative.
            Some(row) => dp::partial_sum(&row) + dp::DECONVOLVE_MASS_SLACK,
            // Numerically unsafe to remove: give up on bounding members of
            // this rule (conservative).
            None => 1.0,
        };
        ub = ub.max(without);
    }
    ub.min(1.0)
}

/// Computes the exact top-k probability of **every** tuple in the view
/// (no threshold, no pruning): `result[pos] = Pr^k` of the tuple at `pos`.
///
/// Used by the sampling-quality experiments (ground truth) and by callers
/// that want the full distribution rather than a thresholded answer set.
pub fn topk_probabilities(
    view: &RankedView,
    k: usize,
    variant: SharingVariant,
) -> (Vec<f64>, ExecStats) {
    let mut scanner = Scanner::new(view, k, variant);
    let mut out = Vec::with_capacity(view.len());
    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let step = scanner.step().expect("position() was Some");
        out.push(prob * step.partial_sum());
    }
    let stats = ExecStats {
        scanned: view.len(),
        evaluated: view.len(),
        dp_cells: scanner.dp_cells(),
        entries_recomputed: scanner.entries_recomputed(),
        ..Default::default()
    };
    (out, stats)
}

/// Computes the exact *position* probabilities of every tuple:
/// `result[pos][j]` is the probability that the tuple at ranked position
/// `pos` is ranked exactly `j+1`-th in a possible world (Eq. 3), for `j < k`.
///
/// This is the quantity U-KRanks maximizes per rank; it falls out of the
/// same scan because `Pr(t_i, j) = Pr(t_i) · Pr(T(t_i), j−1)`.
pub fn position_probabilities(
    view: &RankedView,
    k: usize,
    variant: SharingVariant,
) -> Vec<Vec<f64>> {
    let mut scanner = Scanner::new(view, k, variant);
    let mut out = Vec::with_capacity(view.len());
    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let step = scanner.step().expect("position() was Some");
        out.push(step.row.iter().map(|&s| prob * s).collect());
    }
    out
}

/// Answers the same top-k query for several probability thresholds in one
/// scan: `result[i]` is the PT-k answer set for `thresholds[i]`.
///
/// The scan runs the pruning machinery keyed to the *smallest* threshold
/// (the most demanding one — any tuple prunable there is prunable for every
/// larger threshold), so one pass serves the whole threshold sweep. This is
/// what the Figure 4(d)/5(d) experiments do implicitly, and what an
/// interactive client exploring `p` wants.
///
/// # Panics
/// Panics if `k == 0`, `thresholds` is empty, or any threshold is outside
/// `(0, 1]`.
pub fn evaluate_ptk_multi(
    view: &RankedView,
    k: usize,
    thresholds: &[f64],
    options: &EngineOptions,
) -> Vec<Vec<usize>> {
    assert!(!thresholds.is_empty(), "at least one threshold is required");
    for &p in thresholds {
        assert!(
            p > 0.0 && p <= 1.0,
            "PT-k thresholds must be in (0, 1], got {p}"
        );
    }
    let min = thresholds.iter().copied().fold(f64::INFINITY, f64::min);
    let result = evaluate_ptk(view, k, min, options);
    thresholds
        .iter()
        .map(|&p| {
            result
                .answers
                .iter()
                .copied()
                .filter(|&pos| {
                    result.probabilities[pos].expect("answers are always evaluated") >= p
                })
                .collect()
        })
        .collect()
}

/// Computes the full top-k probability *profile* of every tuple in one
/// scan: `result[pos][k-1] = Pr^k` of the tuple at `pos`, for every depth
/// `k ∈ 1..=max_k`.
///
/// By Eq. 4, `Pr^k(t) = Pr(t) · Σ_{j<k} Pr(T(t), j)`, so the whole profile
/// is the prefix-sum of the position-probability row — one scan serves all
/// depths at once, where calling [`topk_probabilities`] per `k` would cost
/// `max_k` scans.
pub fn topk_probability_profile(
    view: &RankedView,
    max_k: usize,
    variant: SharingVariant,
) -> Vec<Vec<f64>> {
    let mut scanner = Scanner::new(view, max_k, variant);
    let mut out = Vec::with_capacity(view.len());
    while let Some(pos) = scanner.position() {
        let prob = view.prob(pos);
        let step = scanner.step().expect("position() was Some");
        let mut acc = 0.0;
        let profile: Vec<f64> = step
            .row
            .iter()
            .map(|&s| {
                acc += s;
                prob * acc
            })
            .collect();
        out.push(profile);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Panda example, ranked: R1 (0.3), R2 (0.4), R5 (0.8), R3 (0.5),
    /// R4 (1.0), R6 (0.2); rules {1,3} and {2,5}.
    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn panda_topk_probabilities_match_table_3() {
        let view = panda();
        let (pr, stats) = topk_probabilities(&view, 2, SharingVariant::Lazy);
        let expected = [0.3, 0.4, 0.704, 0.38, 0.202, 0.014];
        for (i, e) in expected.iter().enumerate() {
            assert!((pr[i] - e).abs() < 1e-12, "pos {i}: {} vs {e}", pr[i]);
        }
        assert_eq!(stats.scanned, 6);
        assert_eq!(stats.evaluated, 6);
    }

    #[test]
    fn panda_ptk_matches_example_1() {
        let view = panda();
        for pruning in [false, true] {
            let options = EngineOptions {
                pruning,
                ub_check_interval: 1,
                ..Default::default()
            };
            let result = evaluate_ptk(&view, 2, 0.35, &options);
            assert_eq!(result.answers, vec![1, 2, 3], "pruning = {pruning}");
        }
    }

    #[test]
    fn pruned_probabilities_are_below_threshold() {
        let view = panda();
        let result = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
        for (pos, p) in result.probabilities.iter().enumerate() {
            if let Some(p) = p {
                let is_answer = result.answers.contains(&pos);
                assert_eq!(*p >= 0.35, is_answer);
            }
        }
    }

    #[test]
    fn variants_agree_on_answers() {
        let view = panda();
        for variant in [
            SharingVariant::Rc,
            SharingVariant::Aggressive,
            SharingVariant::Lazy,
        ] {
            let result = evaluate_ptk(&view, 2, 0.35, &EngineOptions::with_variant(variant));
            assert_eq!(result.answers, vec![1, 2, 3], "{variant:?}");
        }
    }

    #[test]
    fn position_probabilities_row_sums() {
        let view = panda();
        let pos = position_probabilities(&view, 2, SharingVariant::Lazy);
        let (topk, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
        for i in 0..view.len() {
            let s: f64 = pos[i].iter().sum();
            assert!((s - topk[i]).abs() < 1e-12);
        }
        // Pr(R5 ranked first) = 0.336 (see ptk-worlds tests).
        assert!((pos[2][0] - 0.336).abs() < 1e-12);
    }

    #[test]
    fn first_k_tuples_have_prk_equal_membership() {
        let view = RankedView::from_ranked_probs(&[0.9, 0.1, 0.5, 0.7], &[]).unwrap();
        let (pr, _) = topk_probabilities(&view, 3, SharingVariant::Lazy);
        assert!((pr[0] - 0.9).abs() < 1e-12);
        assert!((pr[1] - 0.1).abs() < 1e-12);
        assert!((pr[2] - 0.5).abs() < 1e-12);
        assert!(pr[3] < 0.7);
    }

    #[test]
    fn theorem5_stop_fires() {
        // Many near-certain tuples: once k answers hold nearly all the
        // top-k mass, the scan stops well before the end.
        let probs = vec![0.999; 200];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let result = evaluate_ptk(&view, 5, 0.5, &EngineOptions::default());
        assert!(result.stats.stopped_early());
        assert!(result.stats.scanned < 200);
        assert_eq!(result.answers, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn upper_bound_stop_fires_without_theorem5() {
        // Moderate probabilities: the top-k mass never concentrates in the
        // answers (many tuples fail), but the partial-sum bound decays to
        // zero, so the UB stop must fire.
        let probs = vec![0.6; 400];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let options = EngineOptions {
            ub_check_interval: 8,
            ..Default::default()
        };
        let result = evaluate_ptk(&view, 5, 0.9, &options);
        assert!(result.stats.stopped_early());
        assert!(
            result.stats.scanned < 400,
            "scanned {}",
            result.stats.scanned
        );
        // Answers must nevertheless be exact: compare against a full scan.
        let (pr, _) = topk_probabilities(&view, 5, SharingVariant::Lazy);
        let expected: Vec<usize> = (0..400).filter(|&i| pr[i] >= 0.9).collect();
        assert_eq!(result.answers, expected);
    }

    #[test]
    fn membership_pruning_counts() {
        // A high-probability failing tuple ahead of low-probability tuples
        // triggers Theorem 3 on them.
        let mut probs = vec![0.95; 10];
        probs.extend(vec![0.3; 20]);
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let options = EngineOptions {
            ub_check_interval: 1000,
            ..Default::default()
        };
        let result = evaluate_ptk(&view, 3, 0.5, &options);
        // Exactness first.
        let (pr, _) = topk_probabilities(&view, 3, SharingVariant::Lazy);
        let expected: Vec<usize> = (0..30).filter(|&i| pr[i] >= 0.5).collect();
        assert_eq!(result.answers, expected);
        assert!(result.stats.pruned_membership > 0 || result.stats.stopped_early());
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn threshold_validation() {
        let view = panda();
        let _ = evaluate_ptk(&view, 2, 0.0, &EngineOptions::default());
    }

    #[test]
    fn empty_view_yields_empty_answer() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let result = evaluate_ptk(&view, 3, 0.5, &EngineOptions::default());
        assert!(result.answers.is_empty());
        assert_eq!(result.stats.scanned, 0);
        assert_eq!(result.answer_mass(), 0.0);
    }

    #[test]
    fn multi_threshold_matches_individual_queries() {
        let view = panda();
        let thresholds = [0.9, 0.35, 0.1, 0.5];
        let multi = evaluate_ptk_multi(&view, 2, &thresholds, &EngineOptions::default());
        for (i, &p) in thresholds.iter().enumerate() {
            let single = evaluate_ptk(&view, 2, p, &EngineOptions::default());
            assert_eq!(multi[i], single.answers, "threshold {p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn multi_threshold_rejects_empty() {
        let _ = evaluate_ptk_multi(&panda(), 2, &[], &EngineOptions::default());
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn multi_threshold_rejects_out_of_range_before_scanning() {
        let _ = evaluate_ptk_multi(&panda(), 2, &[0.5, 1.5], &EngineOptions::default());
    }

    #[test]
    fn profile_matches_per_k_scans() {
        let view = panda();
        let profile = topk_probability_profile(&view, 4, SharingVariant::Lazy);
        for k in 1..=4 {
            let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
            for pos in 0..view.len() {
                assert!(
                    (profile[pos][k - 1] - pr[pos]).abs() < 1e-12,
                    "pos {pos} k {k}: {} vs {}",
                    profile[pos][k - 1],
                    pr[pos]
                );
            }
        }
        // Profiles are monotone in k and bounded by membership.
        for (pos, p) in profile.iter().enumerate() {
            for w in p.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            assert!(p[3] <= view.prob(pos) + 1e-12);
        }
    }

    #[test]
    fn k_larger_than_view() {
        let view = panda();
        let result = evaluate_ptk(&view, 100, 0.1, &EngineOptions::default());
        // Every tuple is always in the top-100 of its world when present:
        // Pr^k = Pr(t), so answers are tuples with Pr(t) >= 0.1.
        assert_eq!(result.answers, vec![0, 1, 2, 3, 4, 5]);
        for (pos, p) in result.probabilities.iter().enumerate() {
            assert!((p.unwrap() - view.prob(pos)).abs() < 1e-12);
        }
    }
}
