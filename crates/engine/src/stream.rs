//! Source-based PT-k entry points over progressive ranked retrieval.
//!
//! [`evaluate_ptk_source`] is the paper's Figure 3 algorithm wired to the
//! retrieval abstraction of `ptk-access` instead of a materialized
//! [`RankedView`](ptk_core::RankedView): tuples are pulled one at a time in
//! ranking order, the compressed dominant set is maintained incrementally
//! (rules are discovered as their members arrive), and the pruning rules of
//! §4.4 stop *retrieval itself* — the point of progressive access. The
//! threshold-algorithm middleware (`ptk_access::TaSource`) then only ever
//! descends its sorted lists as far as the scan actually reached.
//!
//! Since the planner/executor unification these are thin wrappers over the
//! same [`PtkExecutor`] the view path uses; the historical
//! [`StreamOptions`] / [`StreamPtkResult`] / [`StreamAnswer`] names are
//! aliases of the merged types. Streaming-specific behavior now lives in
//! the source hints: a source that cannot report rule layout
//! ([`RankedSource::rule_len`] /
//! [`RankedSource::rule_member_rank`](ptk_access::RankedSource::rule_member_rank))
//! gets absorption-recency ordering of open rule-tuples (correct, shares
//! less), and Theorem 3(2) pruning applies only when
//! [`RankedSource::rule_mass`](ptk_access::RankedSource::rule_mass) is
//! available — skipping it is always safe.

use ptk_access::RankedSource;
use ptk_obs::{Noop, Recorder};

use crate::exec::{AnswerTuple, PtkExecutor, PtkResult};
use crate::plan::{EngineOptions, PtkPlan};

/// Options for the source-based entry points — the same type as
/// [`EngineOptions`] since the engines merged.
pub type StreamOptions = EngineOptions;

/// One answer of a PT-k evaluation — the same type as [`AnswerTuple`]
/// since the engines merged.
pub type StreamAnswer = AnswerTuple;

/// The result of a source-based PT-k evaluation — the same type as
/// [`PtkResult`] since the engines merged.
pub type StreamPtkResult = PtkResult;

/// Answers a PT-k query over a progressive ranked source.
///
/// Pulls tuples from `source` in ranking order, computing each retrieved
/// tuple's exact top-k probability, and stops retrieving as soon as the
/// pruning rules certify that no further tuple can pass `threshold`.
/// Delegates to [`PtkExecutor`].
///
/// # Panics
/// Panics if `k == 0`, `threshold` is outside `(0, 1]`, or the source
/// delivers scores out of order.
pub fn evaluate_ptk_source<S: RankedSource + ?Sized>(
    source: &mut S,
    k: usize,
    threshold: f64,
    options: &StreamOptions,
) -> StreamPtkResult {
    evaluate_ptk_source_recorded(source, k, threshold, options, &Noop)
}

/// [`evaluate_ptk_source`] with observability: execution counters (under
/// the [`counters`](crate::counters) names), the answer count, and
/// per-phase wall-clock spans (`engine.phase.retrieval`,
/// `engine.phase.reorder`, `engine.phase.dp`, `engine.phase.bound`, all
/// under an `engine.query` umbrella span) are recorded into `recorder`.
/// With a disabled recorder this is exactly [`evaluate_ptk_source`] — no
/// clock is ever read.
///
/// # Panics
/// Panics if `k == 0`, `threshold` is outside `(0, 1]`, or the source
/// delivers scores out of order.
pub fn evaluate_ptk_source_recorded<S: RankedSource + ?Sized>(
    source: &mut S,
    k: usize,
    threshold: f64,
    options: &StreamOptions,
    recorder: &dyn Recorder,
) -> StreamPtkResult {
    let plan = PtkPlan::new(k, threshold, options);
    PtkExecutor::with_recorder(&plan, recorder).execute(source)
}

/// Answers the same top-k query for several probability thresholds in one
/// scan of `source`: `result[i]` lists the answers for `thresholds[i]`.
///
/// The source-path twin of
/// [`evaluate_ptk_multi`](crate::evaluate_ptk_multi): the scan's pruning is
/// keyed to the smallest threshold, so one retrieval pass (and one shared
/// DP prefix) serves the whole sweep over *any* [`RankedSource`].
///
/// # Panics
/// Panics if `k == 0`, `thresholds` is empty, any threshold is outside
/// `(0, 1]`, or the source delivers scores out of order.
pub fn evaluate_ptk_multi_source<S: RankedSource + ?Sized>(
    source: &mut S,
    k: usize,
    thresholds: &[f64],
    options: &StreamOptions,
) -> Vec<Vec<AnswerTuple>> {
    let plan = PtkPlan::multi(k, thresholds, options);
    let result = PtkExecutor::new(&plan).execute(source);
    thresholds.iter().map(|&p| result.answers_at(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptk_access::{SortedVecSource, ViewSource};
    use ptk_core::{RankedView, TupleId};

    use crate::exact::evaluate_ptk;

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn stream_matches_view_engine_on_panda() {
        let view = panda();
        let batch = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
        let mut source = ViewSource::new(&view);
        let stream = evaluate_ptk_source(&mut source, 2, 0.35, &StreamOptions::default());
        assert_eq!(stream.answers.len(), batch.answers.len());
        for (s, b) in stream.answers.iter().zip(&batch.answers) {
            assert_eq!(s.id, view.tuple(b.rank).id);
            assert!((s.probability - b.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_stops_retrieval_early() {
        let probs = vec![0.999; 500];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let mut source = ViewSource::new(&view);
        let result = evaluate_ptk_source(&mut source, 5, 0.5, &StreamOptions::default());
        assert!(result.stats.stopped_early());
        assert!(source.retrieved() < 500, "retrieved {}", source.retrieved());
        assert_eq!(result.answers.len(), 5);
    }

    #[test]
    fn stream_from_unsorted_rows() {
        // The panda example fed as raw (score, prob, rule) rows.
        let mut source = SortedVecSource::from_unsorted(vec![
            (25.0, 0.3, None),
            (21.0, 0.4, Some(0)),
            (13.0, 0.5, Some(0)),
            (12.0, 1.0, None),
            (17.0, 0.8, Some(1)),
            (11.0, 0.2, Some(1)),
        ])
        .unwrap();
        let result = evaluate_ptk_source(&mut source, 2, 0.35, &StreamOptions::default());
        let ids: Vec<usize> = result.answers.iter().map(|a| a.id.index()).collect();
        assert_eq!(ids, vec![1, 4, 2]); // R2, R5, R3 in ranking order
        assert!((result.answers[1].probability - 0.704).abs() < 1e-12);
        assert_eq!(result.answers[1].score, 17.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_sources_are_rejected() {
        struct Bad(usize);
        impl RankedSource for Bad {
            fn next_ranked(&mut self) -> Option<ptk_access::SourceTuple> {
                self.0 += 1;
                (self.0 <= 2).then(|| ptk_access::SourceTuple {
                    id: TupleId::new(self.0),
                    score: self.0 as f64, // increasing: illegal
                    prob: 0.5,
                    rule: None,
                })
            }
            fn retrieved(&self) -> usize {
                self.0
            }
        }
        let _ = evaluate_ptk_source(&mut Bad(0), 2, 0.5, &StreamOptions::default());
    }

    #[test]
    fn pruning_off_scans_everything() {
        let view = panda();
        let mut source = ViewSource::new(&view);
        let options = StreamOptions {
            pruning: false,
            ..Default::default()
        };
        let result = evaluate_ptk_source(&mut source, 2, 0.35, &options);
        assert_eq!(result.stats.scanned, 6);
        assert_eq!(result.stats.evaluated, 6);
        assert_eq!(result.answers.len(), 3);
    }

    #[test]
    fn multi_source_matches_per_threshold_runs() {
        let view = panda();
        let thresholds = [0.9, 0.35, 0.1, 0.5];
        let mut source = ViewSource::new(&view);
        let multi =
            evaluate_ptk_multi_source(&mut source, 2, &thresholds, &StreamOptions::default());
        for (i, &p) in thresholds.iter().enumerate() {
            let mut fresh = ViewSource::new(&view);
            let single = evaluate_ptk_source(&mut fresh, 2, p, &StreamOptions::default());
            let ids: Vec<usize> = multi[i].iter().map(|a| a.id.index()).collect();
            let expect: Vec<usize> = single.answers.iter().map(|a| a.id.index()).collect();
            assert_eq!(ids, expect, "threshold {p}");
        }
    }
}
