//! Streaming PT-k evaluation over progressive ranked retrieval.
//!
//! [`evaluate_ptk_source`] is the paper's Figure 3 algorithm wired to the
//! retrieval abstraction of `ptk-access` instead of a materialized
//! [`RankedView`](ptk_core::RankedView): tuples are pulled one at a time in
//! ranking order, the compressed dominant set is maintained incrementally
//! (rules are discovered as their members arrive), and the pruning rules of
//! §4.4 stop *retrieval itself* — the point of progressive access. The
//! threshold-algorithm middleware (`ptk_access::TaSource`) then only ever
//! descends its sorted lists as far as the scan actually reached.
//!
//! Differences from the view-based engine, dictated by the streaming
//! setting:
//!
//! * rule membership lists are unknown ahead of time, so the reordering
//!   heuristic orders open rule-tuples by how recently they absorbed a
//!   member (recently-changed rules sit near the rear, the analogue of the
//!   lazy method's next-member ordering — correctness is unaffected because
//!   Eq. 4 is order-independent);
//! * Theorem 3(2) pruning applies only when the source can report a rule's
//!   total mass ([`RankedSource::rule_mass`]); otherwise it is skipped,
//!   which is safe.

use std::collections::HashMap;

use ptk_access::{RankedSource, RuleKey};
use ptk_core::TupleId;
use ptk_obs::{Noop, PhaseClock, Recorder};

use crate::dp;
use crate::stats::{counters, ExecStats, StopReason};

/// Options for the streaming engine.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Whether the §4.4 pruning rules run (and may stop retrieval early).
    pub pruning: bool,
    /// Cadence, in retrieved tuples, of the early-exit upper-bound check.
    pub ub_check_interval: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            pruning: true,
            ub_check_interval: 64,
        }
    }
}

/// One answer of a streaming PT-k evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAnswer {
    /// The tuple's id as reported by the source.
    pub id: TupleId,
    /// Its ranking score.
    pub score: f64,
    /// Its exact top-k probability.
    pub probability: f64,
}

/// The result of a streaming PT-k evaluation.
#[derive(Debug, Clone)]
pub struct StreamPtkResult {
    /// Tuples passing the threshold, in ranking order.
    pub answers: Vec<StreamAnswer>,
    /// Execution counters. `scanned` equals the number of tuples actually
    /// pulled from the source.
    pub stats: ExecStats,
}

/// One entry of the streaming compressed dominant set.
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    Indep {
        prob: f64,
    },
    Rule {
        key: RuleKey,
        absorbed: u32,
        mass: f64,
    },
}

impl Entry {
    fn mass(&self) -> f64 {
        match self {
            Entry::Indep { prob } => *prob,
            Entry::Rule { mass, .. } => *mass,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RuleScan {
    mass: f64,
    absorbed: u32,
    /// Scan index of the most recent absorption (recency ordering).
    last_touch: usize,
    /// Theorem 3(2)/4 state.
    failed_whole: bool,
    failed_member_max: f64,
}

/// Answers a PT-k query over a progressive ranked source.
///
/// Pulls tuples from `source` in ranking order, computing each retrieved
/// tuple's exact top-k probability, and stops retrieving as soon as the
/// pruning rules certify that no further tuple can pass `threshold`.
///
/// # Panics
/// Panics if `k == 0`, `threshold` is outside `(0, 1]`, or the source
/// delivers scores out of order.
pub fn evaluate_ptk_source<S: RankedSource + ?Sized>(
    source: &mut S,
    k: usize,
    threshold: f64,
    options: &StreamOptions,
) -> StreamPtkResult {
    evaluate_ptk_source_recorded(source, k, threshold, options, &Noop)
}

/// [`evaluate_ptk_source`] with observability: execution counters (under
/// the [`counters`] names), the answer count, and per-phase wall-clock
/// spans are recorded into `recorder`. The streaming engine's phases map
/// directly onto spans: `engine.phase.retrieval` (pulling from the
/// source), `engine.phase.reorder` (rebuilding the desired dominant-set
/// ordering), `engine.phase.dp` (recomputing invalidated DP rows) and
/// `engine.phase.bound` (the periodic early-exit check), all under an
/// `engine.query` umbrella span. With a disabled recorder this is exactly
/// [`evaluate_ptk_source`] — no clock is ever read.
///
/// # Panics
/// Panics if `k == 0`, `threshold` is outside `(0, 1]`, or the source
/// delivers scores out of order.
pub fn evaluate_ptk_source_recorded<S: RankedSource + ?Sized>(
    source: &mut S,
    k: usize,
    threshold: f64,
    options: &StreamOptions,
    recorder: &dyn Recorder,
) -> StreamPtkResult {
    assert!(k > 0, "top-k queries require k >= 1");
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "PT-k thresholds must be in (0, 1], got {threshold}"
    );
    let _query_span = ptk_obs::span(recorder, "engine.query");
    let mut retrieval_clock = PhaseClock::new(recorder);
    let mut reorder_clock = PhaseClock::new(recorder);
    let mut dp_clock = PhaseClock::new(recorder);
    let mut bound_clock = PhaseClock::new(recorder);

    let mut entries: Vec<Entry> = Vec::new();
    let mut rows: Vec<Vec<f64>> = vec![dp::unit_row(k)];
    let mut independents: Vec<f64> = Vec::new(); // arrival order
    let mut rules: HashMap<RuleKey, RuleScan> = HashMap::new();
    let mut stats = ExecStats::default();
    let mut answers = Vec::new();
    let mut answer_mass = 0.0f64;
    let mut failed_member_max = 0.0f64;
    let mut last_score = f64::INFINITY;
    let mut step = 0usize;

    while let Some(tuple) = retrieval_clock.time(|| source.next_ranked()) {
        assert!(
            tuple.score <= last_score + 1e-9,
            "source delivered scores out of order: {} after {last_score}",
            tuple.score
        );
        last_score = tuple.score;
        step += 1;
        stats.scanned += 1;

        // Pruning decision (Theorems 3 and 4).
        let mut pruned_membership = false;
        let mut pruned_rule = false;
        if options.pruning {
            match tuple.rule {
                None => {
                    if tuple.prob <= failed_member_max {
                        pruned_membership = true;
                    }
                }
                Some(key) => {
                    let first_encounter = rules.get(&key).is_none_or(|r| r.absorbed == 0);
                    let rs = rules.entry(key).or_default();
                    if first_encounter {
                        if let Some(mass) = source.rule_mass(key) {
                            if mass <= failed_member_max {
                                rs.failed_whole = true;
                            }
                        }
                    }
                    if rs.failed_whole || tuple.prob <= rs.failed_member_max {
                        pruned_rule = true;
                    }
                }
            }
        }

        if pruned_membership || pruned_rule {
            if pruned_membership {
                stats.pruned_membership += 1;
            } else {
                stats.pruned_rule += 1;
            }
        } else {
            // Build the desired dominant-set list lazily: keep the longest
            // still-valid prefix of the previous list, then append changed
            // or new entries — independents first, then open rule-tuples by
            // absorption recency (oldest first).
            let own_rule = tuple.rule;
            let desired: Vec<Entry> = reorder_clock.time(|| {
                let valid_len = entries
                    .iter()
                    .take_while(|e| match e {
                        Entry::Indep { .. } => true,
                        Entry::Rule { key, absorbed, .. } => {
                            Some(*key) != own_rule
                                && rules.get(key).is_some_and(|r| r.absorbed == *absorbed)
                        }
                    })
                    .count();
                let mut desired: Vec<Entry> = entries[..valid_len].to_vec();
                let mut kept_indeps = 0usize;
                let mut kept_rules: std::collections::HashSet<RuleKey> =
                    std::collections::HashSet::new();
                for e in &desired {
                    match e {
                        Entry::Indep { .. } => kept_indeps += 1,
                        Entry::Rule { key, .. } => {
                            kept_rules.insert(*key);
                        }
                    }
                }
                // Independents are interchangeable (same multiset
                // semantics): re-add however many of them fell off the
                // prefix, in arrival order from the rear.
                for &prob in &independents[kept_indeps..] {
                    desired.push(Entry::Indep { prob });
                }
                let mut open: Vec<(usize, Entry)> = rules
                    .iter()
                    .filter(|(key, rs)| {
                        rs.absorbed > 0 && Some(**key) != own_rule && !kept_rules.contains(key)
                    })
                    .map(|(key, rs)| {
                        (
                            rs.last_touch,
                            Entry::Rule {
                                key: *key,
                                absorbed: rs.absorbed,
                                mass: rs.mass,
                            },
                        )
                    })
                    .collect();
                open.sort_by_key(|(touch, _)| *touch);
                desired.extend(open.into_iter().map(|(_, e)| e));
                desired
            });

            let prefix = entries
                .iter()
                .zip(&desired)
                .take_while(|(a, b)| a == b)
                .count();
            let recomputed = desired.len() - prefix;
            stats.entries_recomputed += recomputed as u64;
            stats.dp_cells += (recomputed * k) as u64;
            dp_clock.time(|| {
                rows.truncate(prefix + 1);
                for e in &desired[prefix..] {
                    let mut row = rows.last().expect("rows never empty").clone();
                    dp::convolve_in_place(&mut row, e.mass());
                    rows.push(row);
                }
            });
            entries = desired;

            let prk = tuple.prob * dp::partial_sum(rows.last().expect("rows never empty"));
            stats.evaluated += 1;
            if prk >= threshold {
                answers.push(StreamAnswer {
                    id: tuple.id,
                    score: tuple.score,
                    probability: prk,
                });
                answer_mass += prk;
            } else if options.pruning {
                match tuple.rule {
                    None => failed_member_max = failed_member_max.max(tuple.prob),
                    Some(key) => {
                        let rs = rules.entry(key).or_default();
                        rs.failed_member_max = rs.failed_member_max.max(tuple.prob);
                    }
                }
            }
        }

        // Fold the tuple into the pool.
        match tuple.rule {
            None => independents.push(tuple.prob),
            Some(key) => {
                let rs = rules.entry(key).or_default();
                rs.mass += tuple.prob;
                rs.absorbed += 1;
                rs.last_touch = step;
            }
        }

        if options.pruning {
            // Theorem 5.
            if answer_mass > k as f64 - threshold {
                stats.stop = Some(StopReason::TotalTopK);
                break;
            }
            // Early-exit upper bound (periodic).
            if stats.scanned % options.ub_check_interval.max(1) == 0 {
                let ub = bound_clock.time(|| {
                    let mut pool = dp::unit_row(k);
                    for &prob in &independents {
                        dp::convolve_in_place(&mut pool, prob);
                    }
                    for rs in rules.values() {
                        if rs.absorbed > 0 {
                            dp::convolve_in_place(&mut pool, rs.mass);
                        }
                    }
                    let mut ub: f64 = dp::partial_sum(&pool);
                    for rs in rules.values() {
                        if rs.absorbed == 0 {
                            continue;
                        }
                        let without = match dp::deconvolve(&pool, rs.mass) {
                            // Slack covers undetectable shed mass; see
                            // `DECONVOLVE_MASS_SLACK`.
                            Some(row) => dp::partial_sum(&row) + dp::DECONVOLVE_MASS_SLACK,
                            None => 1.0,
                        };
                        ub = ub.max(without);
                    }
                    ub.min(1.0)
                });
                if ub < threshold {
                    stats.stop = Some(StopReason::UpperBound);
                    break;
                }
            }
        }
    }

    retrieval_clock.flush(recorder, "engine.phase.retrieval");
    reorder_clock.flush(recorder, "engine.phase.reorder");
    dp_clock.flush(recorder, "engine.phase.dp");
    bound_clock.flush(recorder, "engine.phase.bound");
    stats.record_to(recorder);
    recorder.add(counters::ANSWERS, answers.len() as u64);
    StreamPtkResult { answers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptk_access::{SortedVecSource, ViewSource};
    use ptk_core::RankedView;

    use crate::exact::{evaluate_ptk, EngineOptions};

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn stream_matches_view_engine_on_panda() {
        let view = panda();
        let batch = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
        let mut source = ViewSource::new(&view);
        let stream = evaluate_ptk_source(&mut source, 2, 0.35, &StreamOptions::default());
        assert_eq!(stream.answers.len(), batch.answers.len());
        for (s, &pos) in stream.answers.iter().zip(&batch.answers) {
            assert_eq!(s.id, view.tuple(pos).id);
            assert!((s.probability - batch.probabilities[pos].unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_stops_retrieval_early() {
        let probs = vec![0.999; 500];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let mut source = ViewSource::new(&view);
        let result = evaluate_ptk_source(&mut source, 5, 0.5, &StreamOptions::default());
        assert!(result.stats.stopped_early());
        assert!(source.retrieved() < 500, "retrieved {}", source.retrieved());
        assert_eq!(result.answers.len(), 5);
    }

    #[test]
    fn stream_from_unsorted_rows() {
        // The panda example fed as raw (score, prob, rule) rows.
        let mut source = SortedVecSource::from_unsorted(vec![
            (25.0, 0.3, None),
            (21.0, 0.4, Some(0)),
            (13.0, 0.5, Some(0)),
            (12.0, 1.0, None),
            (17.0, 0.8, Some(1)),
            (11.0, 0.2, Some(1)),
        ])
        .unwrap();
        let result = evaluate_ptk_source(&mut source, 2, 0.35, &StreamOptions::default());
        let ids: Vec<usize> = result.answers.iter().map(|a| a.id.index()).collect();
        assert_eq!(ids, vec![1, 4, 2]); // R2, R5, R3 in ranking order
        assert!((result.answers[1].probability - 0.704).abs() < 1e-12);
        assert_eq!(result.answers[1].score, 17.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_sources_are_rejected() {
        struct Bad(usize);
        impl RankedSource for Bad {
            fn next_ranked(&mut self) -> Option<ptk_access::SourceTuple> {
                self.0 += 1;
                (self.0 <= 2).then(|| ptk_access::SourceTuple {
                    id: TupleId::new(self.0),
                    score: self.0 as f64, // increasing: illegal
                    prob: 0.5,
                    rule: None,
                })
            }
            fn retrieved(&self) -> usize {
                self.0
            }
        }
        let _ = evaluate_ptk_source(&mut Bad(0), 2, 0.5, &StreamOptions::default());
    }

    #[test]
    fn pruning_off_scans_everything() {
        let view = panda();
        let mut source = ViewSource::new(&view);
        let options = StreamOptions {
            pruning: false,
            ..Default::default()
        };
        let result = evaluate_ptk_source(&mut source, 2, 0.35, &options);
        assert_eq!(result.stats.scanned, 6);
        assert_eq!(result.stats.evaluated, 6);
        assert_eq!(result.answers.len(), 3);
    }
}
