//! The shared scan layout: one materialization of a ranked snapshot's scan,
//! compressed rule bookkeeping included, reused by every query of a batch.
//!
//! Before this module, every batch worker forked its own cursor and
//! re-derived the rule layout tuple by tuple — per query, the executor made
//! up to three virtual hint calls per scanned tuple (`rule_len`,
//! `rule_member_rank`, `rule_mass`) and `ViewSource::new` re-ran its O(n)
//! keyed check. [`ScanLayout::materialize`] performs that work *once per
//! batch* against the shared [`SnapshotSource`]: it records, for every
//! rank, exactly what a fresh sequential cursor would have answered at that
//! rank. [`LayoutCursor`] then replays the recording as a
//! [`RankedSource`], so the unchanged sequential executor runs over it
//! *bit-identically* to a real fork — same tuples, same hint answers, same
//! probabilities — while touching no virtual source and no per-query setup.
//!
//! The layout also precomputes what the intra-query parallel path needs:
//! the availability-ordered *stable list* (independent tuples and completed
//! rules, in the order they join the stable group of §4.3.2) and the
//! *rule-closed cuts* — ranks `b` such that every rule with a member before
//! `b` has **all** members before `b`. At such a cut the compressed
//! dominant set is fully stable, which is what lets a segment worker resume
//! the prefix-shared DP from a single boundary row (see `exec.rs`).

use std::collections::HashMap;

use ptk_access::{RankedSource, RuleKey, SnapshotSource, SourceTuple};

/// One rank of the materialized scan: the tuple plus the hint answers a
/// fresh sequential cursor would give at this rank.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LayoutTuple {
    /// The tuple as the source delivered it.
    pub tuple: SourceTuple,
    /// `source.rule_len(rule)` at this rank (queried for every rule member).
    pub rule_len: Option<usize>,
    /// `source.rule_member_rank(rule, seen + 1)` at this rank — the scan
    /// rank of the rule's next member after this one.
    pub next_member_rank: Option<usize>,
    /// The member ordinal the hint above was queried with (`seen + 1`),
    /// for debug verification that a replay asks the recorded question.
    pub hint_member: u32,
    /// `source.rule_mass(rule)`, recorded at the rule's *first* member rank
    /// only — the one rank at which the executor can ask it.
    pub rule_mass: Option<f64>,
}

/// What a stable item is, with everything a segment worker needs to seed
/// its compressor state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StableSeed {
    /// An independent tuple (its tag is its scan rank).
    Indep {
        /// Scan rank (the executor's per-scan tag).
        tag: usize,
        /// Membership probability.
        prob: f64,
    },
    /// A rule whose last member has been scanned.
    Rule {
        /// The rule's identity.
        key: RuleKey,
        /// Final member count.
        absorbed: u32,
        /// Final mass — the members' probabilities summed in scan order,
        /// the exact f64 accumulation a sequential compressor performs.
        mass: f64,
    },
}

/// A stable item together with the rank whose absorption made it stable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StableRecord {
    /// Rank of the absorb that created the item (for independents, the
    /// tuple's own rank; for rules, the last member's rank).
    pub avail_rank: usize,
    /// The item itself.
    pub seed: StableSeed,
}

/// The materialized scan of one ranked snapshot. See the module docs.
#[derive(Debug)]
pub(crate) struct ScanLayout {
    /// Per-rank recording, in scan order.
    pub tuples: Vec<LayoutTuple>,
    /// Stable items in availability order (at most one per rank).
    pub stable: Vec<StableRecord>,
    /// Valid rule-closed cut ranks, ascending, each in `1..n`.
    cuts: Vec<usize>,
    /// False when the source's reported rule lengths disagreed with the
    /// members it actually delivered — segmentation then stands down and
    /// every query runs the (equally correct) whole-scan path.
    segmentable: bool,
}

/// Per-rule bookkeeping while materializing.
#[derive(Debug, Default)]
struct BuildRule {
    seen: u32,
    len: Option<usize>,
    mass: f64,
    open: bool,
}

impl ScanLayout {
    /// Scans one forked cursor to exhaustion, recording tuples, hint
    /// answers, stable availability, and rule-closed cuts.
    ///
    /// # Panics
    /// Panics if the source delivers scores out of order — the same
    /// contract violation the executor itself panics on.
    pub(crate) fn materialize<S: SnapshotSource + ?Sized>(source: &S) -> ScanLayout {
        let mut cursor = source.fork();
        let mut layout = ScanLayout {
            tuples: Vec::with_capacity(cursor.len_hint().unwrap_or(0)),
            stable: Vec::new(),
            cuts: Vec::new(),
            segmentable: true,
        };
        let mut rules: HashMap<RuleKey, BuildRule> = HashMap::new();
        let mut open_rules = 0usize;
        let mut last_score = f64::INFINITY;
        while let Some(tuple) = cursor.next_ranked() {
            assert!(
                tuple.score <= last_score + 1e-9,
                "source delivered scores out of order: {} after {last_score}",
                tuple.score
            );
            last_score = tuple.score;
            let rank = layout.tuples.len();
            let mut rec = LayoutTuple {
                tuple,
                rule_len: None,
                next_member_rank: None,
                hint_member: 0,
                rule_mass: None,
            };
            match tuple.rule {
                None => layout.stable.push(StableRecord {
                    avail_rank: rank,
                    seed: StableSeed::Indep {
                        tag: rank,
                        prob: tuple.prob,
                    },
                }),
                Some(key) => {
                    let rs = rules.entry(key).or_default();
                    // Ask the source exactly what a fresh query cursor at
                    // this rank would ask, in the same order.
                    if rs.seen == 0 {
                        rec.rule_mass = cursor.rule_mass(key);
                    }
                    rec.rule_len = cursor.rule_len(key);
                    rec.hint_member = rs.seen + 1;
                    rec.next_member_rank = cursor.rule_member_rank(key, rs.seen as usize + 1);
                    // Mirror the compressor's absorption bookkeeping bit
                    // for bit: mass accumulates in scan order, clamped at 1
                    // exactly like `Compressor::absorb` (an ulp of overshoot
                    // is legal input); the first reported length sticks.
                    rs.mass = (rs.mass + tuple.prob).min(1.0);
                    rs.seen += 1;
                    if rs.len.is_none() {
                        rs.len = rec.rule_len;
                    }
                    match rs.len {
                        Some(len) if len == rs.seen as usize => {
                            // The rule just completed: it joins the stable
                            // group here.
                            if rs.open {
                                open_rules -= 1;
                                rs.open = false;
                            }
                            layout.stable.push(StableRecord {
                                avail_rank: rank,
                                seed: StableSeed::Rule {
                                    key,
                                    absorbed: rs.seen,
                                    mass: rs.mass,
                                },
                            });
                        }
                        Some(len) if (rs.seen as usize) > len => {
                            // The source under-reported the rule's length;
                            // the sequential engine tolerates this (the
                            // rule-tuple's mass is what matters), but the
                            // segment planner cannot trust closure here.
                            layout.segmentable = false;
                        }
                        _ => {
                            if !rs.open {
                                rs.open = true;
                                open_rules += 1;
                            }
                        }
                    }
                }
            }
            layout.tuples.push(rec);
            // A cut after this rank is rule-closed iff no rule is open.
            if open_rules == 0 {
                layout.cuts.push(rank + 1);
            }
        }
        // The rank-n "cut" is the end of the scan, not a boundary.
        if layout.cuts.last() == Some(&layout.tuples.len()) {
            layout.cuts.pop();
        }
        layout
    }

    /// Number of ranks in the layout.
    pub(crate) fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Picks segment boundaries for a partitioned deep scan: a pure
    /// function of the layout and the two policy constants — **never of
    /// the pool width** — so segmentation can change only how work is
    /// scheduled, not what any rendering of the result looks like.
    ///
    /// Aims for segments of at least `min_tuples`, capped at
    /// `max_segments`, snapping each ideal boundary down to the nearest
    /// rule-closed cut. Returns the chosen cuts (ascending, each in
    /// `1..n`), or an empty vector when the scan is not worth partitioning
    /// (too small, no usable cuts, or an untrustworthy rule layout).
    pub(crate) fn plan_segments(&self, min_tuples: usize, max_segments: usize) -> Vec<usize> {
        let n = self.len();
        if !self.segmentable || self.cuts.is_empty() || n < min_tuples.saturating_mul(2) {
            return Vec::new();
        }
        let want = (n / min_tuples.max(1)).clamp(1, max_segments.max(1));
        if want < 2 {
            return Vec::new();
        }
        let mut chosen = Vec::with_capacity(want - 1);
        let mut last = 0usize;
        for i in 1..want {
            let target = i * n / want;
            // Largest cut <= target.
            let pos = self.cuts.partition_point(|&c| c <= target);
            if pos == 0 {
                continue;
            }
            let cut = self.cuts[pos - 1];
            if cut > last {
                chosen.push(cut);
                last = cut;
            }
        }
        chosen
    }

    /// The stable-prefix length for a cut `b`: how many stable items have
    /// `avail_rank < bound`.
    pub(crate) fn stable_before(&self, bound: usize) -> usize {
        self.stable.partition_point(|s| s.avail_rank < bound)
    }
}

/// A replaying [`RankedSource`] over a [`ScanLayout`]: answers every
/// retrieval and hint query with what the materialization recorded at that
/// rank, so the sequential executor over a `LayoutCursor` is bit-identical
/// to the same executor over a fresh fork of the original source.
///
/// The hint methods answer *for the most recently delivered rank* — which
/// is the only rank the executor ever asks about, immediately after
/// retrieval. Debug builds verify the question matches the recording.
#[derive(Debug)]
pub(crate) struct LayoutCursor<'l> {
    layout: &'l ScanLayout,
    cursor: usize,
}

impl<'l> LayoutCursor<'l> {
    pub(crate) fn new(layout: &'l ScanLayout) -> LayoutCursor<'l> {
        LayoutCursor { layout, cursor: 0 }
    }

    /// The record of the most recently delivered rank.
    fn last(&self) -> Option<&LayoutTuple> {
        self.cursor
            .checked_sub(1)
            .and_then(|i| self.layout.tuples.get(i))
    }
}

impl RankedSource for LayoutCursor<'_> {
    fn next_ranked(&mut self) -> Option<SourceTuple> {
        let rec = self.layout.tuples.get(self.cursor)?;
        self.cursor += 1;
        Some(rec.tuple)
    }

    fn rule_mass(&self, rule: RuleKey) -> Option<f64> {
        let rec = self.last()?;
        debug_assert_eq!(rec.tuple.rule, Some(rule), "mass asked off-rank");
        rec.rule_mass
    }

    fn rule_len(&self, rule: RuleKey) -> Option<usize> {
        let rec = self.last()?;
        debug_assert_eq!(rec.tuple.rule, Some(rule), "len asked off-rank");
        rec.rule_len
    }

    fn rule_member_rank(&self, rule: RuleKey, member: usize) -> Option<usize> {
        let rec = self.last()?;
        debug_assert_eq!(rec.tuple.rule, Some(rule), "member rank asked off-rank");
        debug_assert_eq!(
            member, rec.hint_member as usize,
            "member ordinal differs from the recorded question"
        );
        rec.next_member_rank
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.layout.len())
    }

    fn retrieved(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptk_access::SortedVecSource;
    use ptk_core::RankedView;

    fn demo_source() -> SortedVecSource {
        // Scan order: score 9..=1. Rule 0 members at ranks 1 and 3; rule 1
        // members at ranks 5 and 6; independents elsewhere.
        SortedVecSource::from_unsorted(vec![
            (9.0, 0.5, None),
            (8.0, 0.3, Some(0)),
            (7.0, 0.9, None),
            (6.0, 0.4, Some(0)),
            (5.0, 0.2, None),
            (4.0, 0.25, Some(1)),
            (3.0, 0.35, Some(1)),
            (2.0, 0.6, None),
        ])
        .unwrap()
    }

    #[test]
    fn cursor_replays_the_source_exactly() {
        let src = demo_source();
        let layout = ScanLayout::materialize(&src);
        assert_eq!(layout.len(), 8);
        let mut replay = LayoutCursor::new(&layout);
        let mut fork = src.fork();
        loop {
            let a = fork.next_ranked();
            let b = replay.next_ranked();
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                    assert_eq!(x.prob.to_bits(), y.prob.to_bits());
                    assert_eq!(x.rule, y.rule);
                    if let Some(key) = y.rule {
                        assert_eq!(fork.rule_len(key), replay.rule_len(key));
                    }
                }
                (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(replay.len_hint(), Some(8));
        assert_eq!(replay.retrieved(), 8);
    }

    #[test]
    fn stable_list_is_availability_ordered() {
        let layout = ScanLayout::materialize(&demo_source());
        let avails: Vec<usize> = layout.stable.iter().map(|s| s.avail_rank).collect();
        // Independents at 0, 2, 4, 7; rule 0 completes at 3; rule 1 at 6.
        assert_eq!(avails, vec![0, 2, 3, 4, 6, 7]);
        match layout.stable[2].seed {
            StableSeed::Rule { key, absorbed, .. } => {
                assert_eq!(key, RuleKey(0));
                assert_eq!(absorbed, 2);
            }
            ref other => panic!("expected rule 0 at avail 3, got {other:?}"),
        }
        assert_eq!(layout.stable_before(3), 2);
        assert_eq!(layout.stable_before(4), 3);
    }

    #[test]
    fn cuts_are_rule_closed() {
        let layout = ScanLayout::materialize(&demo_source());
        // Rule 0 spans ranks 1..=3, rule 1 spans 5..=6: cuts may not split
        // either. Valid: 1 (after rank 0), 4, 5, 7 — never 2, 3, or 6, and
        // never 8 (the end of the scan).
        assert_eq!(layout.cuts, vec![1, 4, 5, 7]);
    }

    #[test]
    fn unknown_rule_lengths_block_cuts_after_first_member() {
        // A view-less source with no layout hints: rules never close, so
        // the only cuts precede the first rule member.
        let view = RankedView::from_ranked_probs(&[0.5, 0.4, 0.3, 0.2], &[vec![1, 3]]).unwrap();
        let layout = ScanLayout::materialize(&view);
        // RankedView forks report rule layout, so rule 0 closes at rank 3:
        // cuts = 1, 4... but rank 4 is the end, so it is dropped.
        assert_eq!(layout.cuts, vec![1]);
        assert!(layout.plan_segments(1, 8).len() <= 1);
    }

    #[test]
    fn segment_planning_is_a_pure_function_of_the_layout() {
        let rows: Vec<(f64, f64, Option<u32>)> = (0..1000)
            .map(|i| {
                let rule = (i % 7 == 0).then_some((i / 7) as u32);
                (1000.0 - i as f64, 0.3, rule)
            })
            .collect();
        let src = SortedVecSource::from_unsorted(rows).unwrap();
        let layout = ScanLayout::materialize(&src);
        let a = layout.plan_segments(128, 16);
        let b = layout.plan_segments(128, 16);
        assert_eq!(a, b, "same layout, same cuts");
        assert!(!a.is_empty(), "1000 tuples at min 128 should partition");
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&c| c >= 1 && c < layout.len()));
        // Too small to bother.
        assert!(layout.plan_segments(600, 16).is_empty());
    }
}
