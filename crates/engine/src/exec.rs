//! The unified PT-k executor.
//!
//! [`PtkExecutor`] drives a [`PtkPlan`] over any [`RankedSource`]: it is the
//! single implementation of the paper's Figure 3 algorithm — one scan in
//! ranking order, rule-tuple compression (Corollaries 1–2), prefix-shared
//! subset-probability DP (§4.3.2), and the §4.4 pruning rules — behind both
//! the view-based (`evaluate_ptk*`) and source-based
//! (`evaluate_ptk_source*`) entry points, which are now thin wrappers.
//!
//! The dominant-set bookkeeping lives in the crate-internal [`Compressor`],
//! shared with [`Scanner`](crate::Scanner) (the view-specialized adapter).
//! Sources that expose rule layout ahead of time
//! ([`RankedSource::rule_len`] / [`RankedSource::rule_member_rank`]) get
//! the paper's full aggressive/lazy reordering — a `ViewSource` is then
//! *bit-identical* to the materialized engine; sources that cannot (e.g.
//! threshold-algorithm middleware) degrade gracefully to absorption-recency
//! ordering, which shares less but computes the same probabilities (Eq. 4
//! is order-independent).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ptk_access::{RankedSource, RuleKey, SnapshotSource};
use ptk_core::TupleId;
use ptk_obs::{
    Mark, Metrics, Noop, Payload, PhaseClock, PruneRule, Recorder, RingSink, SharedSink, Snapshot,
    Stage, StopRule, TraceEvent, Tracer,
};
use ptk_par::{StealStats, ThreadPool};

use crate::dp;
use crate::layout::{LayoutCursor, ScanLayout, StableRecord, StableSeed};
use crate::plan::{PtkBatch, PtkPlan, SharingVariant};
use crate::stats::{counters, ExecStats, StopReason};

/// One answer of a PT-k evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerTuple {
    /// 0-based rank at which the tuple was scanned. For a view-backed
    /// execution this is the tuple's ranked position in the view.
    pub rank: usize,
    /// The tuple's id as reported by the source.
    pub id: TupleId,
    /// Its ranking score (a position stand-in when the source has none).
    pub score: f64,
    /// Its exact top-k probability `Pr^k`.
    pub probability: f64,
}

/// The result of a PT-k evaluation, shared by every entry point.
#[derive(Debug, Clone)]
pub struct PtkResult {
    /// Tuples whose top-k probability passes the scan threshold, in ranking
    /// order.
    pub answers: Vec<AnswerTuple>,
    /// `probabilities[rank]` is `Some(Pr^k)` when the engine computed the
    /// exact top-k probability of the tuple scanned at `rank`, and `None`
    /// when the tuple was pruned (its `Pr^k` is then known to be below the
    /// threshold). Tuples never scanned (early stop) are absent; the
    /// view-based wrappers pad with `None` to the view's length.
    pub probabilities: Vec<Option<f64>>,
    /// Execution counters. `scanned` equals the number of tuples actually
    /// pulled from the source.
    pub stats: ExecStats,
}

impl PtkResult {
    /// The answers' scan ranks (for a view, their ranked positions), in
    /// ranking order — the shape of the legacy view-based answer list.
    pub fn answer_ranks(&self) -> Vec<usize> {
        self.answers.iter().map(|a| a.rank).collect()
    }

    /// Sum of the top-k probabilities of the answers.
    pub fn answer_mass(&self) -> f64 {
        self.answers.iter().map(|a| a.probability).sum()
    }

    /// The answers passing `threshold` — for slicing a multi-threshold
    /// scan's result per requested threshold.
    pub fn answers_at(&self, threshold: f64) -> Vec<AnswerTuple> {
        self.answers
            .iter()
            .copied()
            .filter(|a| a.probability >= threshold)
            .collect()
    }
}

/// One element of a compressed dominant set, as tracked by [`Compressor`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PoolEntry {
    /// An independent tuple. `tag` is caller-assigned and unique per scan
    /// (the scan rank for the executor, the ranked position for `Scanner`).
    Indep {
        /// Caller-assigned unique identity.
        tag: usize,
        /// Membership probability.
        prob: f64,
    },
    /// A rule-tuple: the scanned members of one rule compressed into a
    /// single pseudo-tuple (Corollary 1).
    Rule {
        /// The rule's identity.
        key: RuleKey,
        /// Dense slot of the rule's state inside the owning [`Compressor`]
        /// (assigned at first absorption), so per-entry state checks are
        /// array lookups on the hot path.
        idx: u32,
        /// Members absorbed so far; two rule-tuples for the same rule are
        /// interchangeable iff this matches.
        absorbed: u32,
        /// Sum of the absorbed members' probabilities.
        mass: f64,
    },
}

impl PoolEntry {
    /// The probability this entry contributes to the DP.
    pub(crate) fn mass(&self) -> f64 {
        match self {
            PoolEntry::Indep { prob, .. } => *prob,
            PoolEntry::Rule { mass, .. } => *mass,
        }
    }

    /// Whether two entries denote the same pseudo-tuple with the same mass
    /// (so a DP row computed through one is valid for the other). Uses the
    /// absorbed-member count rather than float mass comparison.
    fn same(&self, other: &PoolEntry) -> bool {
        match (self, other) {
            (PoolEntry::Indep { tag: a, .. }, PoolEntry::Indep { tag: b, .. }) => a == b,
            (
                PoolEntry::Rule {
                    key: ka,
                    absorbed: ca,
                    ..
                },
                PoolEntry::Rule {
                    key: kb,
                    absorbed: cb,
                    ..
                },
            ) => ka == kb && ca == cb,
            _ => false,
        }
    }
}

/// Per-rule absorption state.
#[derive(Debug, Clone)]
struct RuleState {
    /// The rule's identity (the reverse of the dense-slot mapping).
    key: RuleKey,
    /// Sum of absorbed members' probabilities.
    mass: f64,
    /// Number of absorbed members.
    absorbed: u32,
    /// Absorption step of the most recent member (recency ordering when the
    /// rule's layout is unknown).
    last_touch: usize,
    /// Scan rank of the next unabsorbed member, when the source knows it.
    next_rank: Option<usize>,
    /// Total member count, when the source knows it.
    len: Option<usize>,
    /// Whether every member has been absorbed (requires `len`). Completed
    /// rule-tuples join the stable group and never change again.
    completed: bool,
    /// Lazy-variant scratch: stamp marking membership in the kept prefix.
    kept_stamp: u64,
}

/// An item of the "stable" group: independents and completed rule-tuples,
/// in the order they became available (observation 1 of §4.3.2).
#[derive(Debug, Clone, Copy)]
enum StableItem {
    Indep {
        tag: usize,
        prob: f64,
    },
    /// A completed rule, by its dense state slot.
    CompletedRule(u32),
}

/// What the executor (or the [`Scanner`](crate::Scanner) adapter) tells the
/// compressor about the tuple being folded into the pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AbsorbSpec {
    /// Unique identity for independents (scan rank / ranked position).
    pub tag: usize,
    /// Membership probability.
    pub prob: f64,
    /// The tuple's rule, if any.
    pub rule: Option<RuleKey>,
    /// The rule's total member count, if known.
    pub rule_len: Option<usize>,
    /// Scan rank of the rule's next member *after* this one, if known.
    pub next_member_rank: Option<usize>,
}

/// The incremental compressed dominant set plus its prefix-shared DP rows —
/// the shared core behind the executor and the view [`Scanner`](crate::Scanner).
///
/// Ordering invariants (the source of the bit-for-bit view/source parity):
/// the stable group keeps availability order; open rule-tuples are ordered
/// by next-member rank descending when the layout is known (the paper's
/// aggressive policy), falling back to absorption recency otherwise; and
/// rules iterate in ascending `RuleKey` order (`rule_order` is kept sorted
/// by key), which for dense view-derived keys is exactly the view's
/// rule-index order.
#[derive(Debug)]
pub(crate) struct Compressor {
    k: usize,
    variant: SharingVariant,
    /// Entry list of the most recent *built* step.
    entries: Vec<PoolEntry>,
    /// `rows[m]` is the DP row after `entries[..m]`; `rows.len() == entries.len() + 1`.
    rows: Vec<Vec<f64>>,
    /// Freelist of retired row buffers (all length `k`), so recomputing a
    /// suffix recycles the truncated rows' allocations instead of hitting
    /// the allocator once per entry.
    spare_rows: Vec<Vec<f64>>,
    /// Stable-group items in availability order.
    stable: Vec<StableItem>,
    /// Rule states in first-absorption order; `PoolEntry::Rule::idx` and
    /// `StableItem::CompletedRule` index into this, so the hot per-entry
    /// checks never touch a map.
    rule_states: Vec<RuleState>,
    /// `RuleKey` → dense slot in `rule_states`.
    rule_index: HashMap<RuleKey, u32>,
    /// Dense slots sorted by ascending `RuleKey` — the canonical rule
    /// iteration order.
    rule_order: Vec<u32>,
    /// DP cells computed so far (`k` per recomputed entry).
    dp_cells: u64,
    /// Entries recomputed so far (the paper's Eq. 5 cost itself).
    entries_recomputed: u64,
    /// Lazy-variant scratch: stamps marking independents (by tag) already
    /// in the kept prefix, so membership tests are O(1).
    kept_indep_stamp: Vec<u64>,
    stamp: u64,
    /// Absorption counter driving `last_touch`.
    step: usize,
}

impl Compressor {
    pub(crate) fn new(k: usize, variant: SharingVariant) -> Compressor {
        assert!(k > 0, "top-k queries require k >= 1");
        Compressor {
            k,
            variant,
            entries: Vec::new(),
            rows: vec![dp::unit_row(k)],
            spare_rows: Vec::new(),
            stable: Vec::new(),
            rule_states: Vec::new(),
            rule_index: HashMap::new(),
            rule_order: Vec::new(),
            dp_cells: 0,
            entries_recomputed: 0,
            kept_indep_stamp: Vec::new(),
            stamp: 0,
            step: 0,
        }
    }

    /// A compressor positioned exactly where a sequential scan would be
    /// after absorbing ranks `0..boundary` at a **rule-closed cut**: every
    /// absorbed tuple is stable (an independent or a completed rule), and
    /// the last *built* entry list is the availability-ordered stable
    /// prefix `stables[..entry_count]` — the `entry_count` items available
    /// before rank `boundary - 1` — whose DP row is `boundary_row`.
    ///
    /// Why that is the sequential state: with pruning off, the list built
    /// while evaluating the tuple at `boundary - 1` excludes that tuple's
    /// own rule (Corollary 2) and contains no other open rule (any rule
    /// open after rank `boundary - 2` must have its next member at
    /// `boundary - 1` — making it the own rule — or at `>= boundary`,
    /// contradicting rule closure), so it is precisely the stable items
    /// available through rank `boundary - 2`, in availability order, for
    /// every [`SharingVariant`]. The DP rows *under* the last one are
    /// seeded as placeholders: `RC` rebuilds from `rows[0]` (the unit row)
    /// anyway, and the prefix-sharing variants keep `rows[..=entry_count]`
    /// intact and only ever read the last, so no placeholder is read and
    /// the forked state stays bit-identical to the sequential one.
    ///
    /// Counters start at zero: the seeded prefix's DP work was already
    /// counted by whoever produced `boundary_row` (the preceding
    /// segments), so per-segment counters sum to the sequential totals.
    pub(crate) fn from_boundary(
        k: usize,
        variant: SharingVariant,
        stables: &[StableRecord],
        entry_count: usize,
        boundary_row: &[f64],
    ) -> Compressor {
        let mut comp = Compressor::new(k, variant);
        for rec in stables {
            match rec.seed {
                StableSeed::Indep { tag, prob } => {
                    comp.stable.push(StableItem::Indep { tag, prob });
                }
                StableSeed::Rule {
                    key,
                    absorbed,
                    mass,
                } => {
                    let idx = comp.rule_states.len() as u32;
                    let states = &comp.rule_states;
                    let pos = comp
                        .rule_order
                        .partition_point(|&j| states[j as usize].key < key);
                    comp.rule_states.push(RuleState {
                        key,
                        mass,
                        absorbed,
                        last_touch: 0,
                        next_rank: None,
                        len: Some(absorbed as usize),
                        completed: true,
                        kept_stamp: 0,
                    });
                    comp.rule_order.insert(pos, idx);
                    comp.rule_index.insert(key, idx);
                    comp.stable.push(StableItem::CompletedRule(idx));
                }
            }
        }
        debug_assert!(entry_count <= comp.stable.len());
        comp.entries = comp.stable[..entry_count]
            .iter()
            .map(|item| match *item {
                StableItem::Indep { tag, prob } => PoolEntry::Indep { tag, prob },
                StableItem::CompletedRule(idx) => {
                    let rs = &comp.rule_states[idx as usize];
                    PoolEntry::Rule {
                        key: rs.key,
                        idx,
                        absorbed: rs.absorbed,
                        mass: rs.mass,
                    }
                }
            })
            .collect();
        if entry_count > 0 {
            // `rows[0]` stays the unit row; only the last row is real.
            comp.rows.extend((1..entry_count).map(|_| Vec::new()));
            comp.rows.push(boundary_row.to_vec());
        }
        comp
    }

    /// How many members of `rule` have been absorbed so far.
    pub(crate) fn absorbed(&self, rule: RuleKey) -> u32 {
        self.rule_index
            .get(&rule)
            .map_or(0, |&i| self.rule_states[i as usize].absorbed)
    }

    pub(crate) fn dp_cells(&self) -> u64 {
        self.dp_cells
    }

    pub(crate) fn entries_recomputed(&self) -> u64 {
        self.entries_recomputed
    }

    /// Distinct rules compressed into rule-tuples so far (Corollary 2).
    pub(crate) fn rules_compressed(&self) -> u64 {
        self.rule_states.len() as u64
    }

    /// The entry list of the most recently built step.
    pub(crate) fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// The DP row of the most recently built step:
    /// `row[j] = Pr(T(t_i), j)` for `j < k`.
    pub(crate) fn last_row(&self) -> &[f64] {
        self.rows.last().expect("rows never empty")
    }

    /// Builds the desired (ordered) compressed dominant set for a tuple
    /// belonging to `own_rule`, per the configured [`SharingVariant`].
    pub(crate) fn desired_list(&mut self, own_rule: Option<RuleKey>) -> Vec<PoolEntry> {
        match self.variant {
            SharingVariant::Rc | SharingVariant::Aggressive => self.canonical_list(own_rule, None),
            SharingVariant::Lazy => {
                // Keep the longest still-valid prefix of the previous list.
                let valid_len = self
                    .entries
                    .iter()
                    .take_while(|e| self.entry_still_valid(e, own_rule))
                    .count();
                // Mark the kept prefix so membership tests are O(1).
                self.stamp += 1;
                let stamp = self.stamp;
                for i in 0..valid_len {
                    match self.entries[i] {
                        PoolEntry::Indep { tag, .. } => {
                            if self.kept_indep_stamp.len() <= tag {
                                self.kept_indep_stamp.resize(tag + 1, 0);
                            }
                            self.kept_indep_stamp[tag] = stamp;
                        }
                        PoolEntry::Rule { idx, .. } => {
                            self.rule_states[idx as usize].kept_stamp = stamp;
                        }
                    }
                }
                let mut list = self.entries[..valid_len].to_vec();
                // Append everything not already kept, in canonical order.
                list.extend(self.canonical_list(own_rule, Some(stamp)));
                list
            }
        }
    }

    /// Recomputes the DP rows for `desired`, reusing the rows of the
    /// longest common prefix with the previous list (none under `RC`).
    pub(crate) fn recompute(&mut self, desired: Vec<PoolEntry>) {
        let prefix = match self.variant {
            SharingVariant::Rc => 0,
            SharingVariant::Aggressive | SharingVariant::Lazy => {
                common_prefix(&self.entries, &desired)
            }
        };
        let recomputed = desired.len() - prefix;
        self.entries_recomputed += recomputed as u64;
        self.dp_cells += (recomputed * self.k) as u64;
        self.spare_rows.extend(self.rows.drain(prefix + 1..));
        for e in &desired[prefix..] {
            // Recycle a retired buffer when one is free; copying the last
            // row into it is the same f64 sequence as cloning it, so the
            // DP stays bit-identical either way.
            let spare = self.spare_rows.pop();
            let last = self.rows.last().expect("rows never empty");
            let mut row = match spare {
                Some(mut buf) => {
                    buf.clear();
                    buf.extend_from_slice(last);
                    buf
                }
                None => last.clone(),
            };
            dp::convolve_in_place(&mut row, e.mass());
            self.rows.push(row);
        }
        self.entries = desired;
    }

    /// Folds a scanned tuple into the pool (after its evaluation, or as the
    /// only action when it was pruned).
    pub(crate) fn absorb(&mut self, spec: AbsorbSpec) {
        self.step += 1;
        match spec.rule {
            None => self.stable.push(StableItem::Indep {
                tag: spec.tag,
                prob: spec.prob,
            }),
            Some(key) => {
                let idx = match self.rule_index.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = self.rule_states.len() as u32;
                        let states = &self.rule_states;
                        let pos = self
                            .rule_order
                            .partition_point(|&j| states[j as usize].key < key);
                        self.rule_states.push(RuleState {
                            key,
                            mass: 0.0,
                            absorbed: 0,
                            last_touch: 0,
                            next_rank: None,
                            len: None,
                            completed: false,
                            kept_stamp: 0,
                        });
                        self.rule_order.insert(pos, i);
                        self.rule_index.insert(key, i);
                        i
                    }
                };
                let rs = &mut self.rule_states[idx as usize];
                // A rule's mass is a probability: member probabilities that
                // mathematically sum to 1 can overshoot by an ulp in f64,
                // and the DP rejects q > 1. Clamp exactly as the view does
                // (`RankedView` tolerates mass <= 1 + 1e-9 and stores
                // `min(1.0)`). `ScanLayout::materialize` mirrors this
                // operation bit for bit.
                rs.mass = (rs.mass + spec.prob).min(1.0);
                rs.absorbed += 1;
                rs.last_touch = self.step;
                rs.next_rank = spec.next_member_rank;
                if rs.len.is_none() {
                    rs.len = spec.rule_len;
                }
                if rs.len == Some(rs.absorbed as usize) {
                    // The rule just completed: it joins the stable group at
                    // this availability point. Without a known length the
                    // rule-tuple simply stays open, which is equally
                    // correct (it contributes the same mass either way).
                    rs.completed = true;
                    self.stable.push(StableItem::CompletedRule(idx));
                }
            }
        }
    }

    /// The subset-probability row over the *entire current pool* — every
    /// absorbed tuple compressed, no rule excluded. This is what a future
    /// independent tuple's dominant set would contain if scanning stopped
    /// here; used by the early-exit upper bound.
    pub(crate) fn pool_row(&self) -> Vec<f64> {
        let mut row = dp::unit_row(self.k);
        for item in &self.stable {
            let mass = match *item {
                StableItem::Indep { prob, .. } => prob,
                StableItem::CompletedRule(idx) => self.rule_states[idx as usize].mass,
            };
            dp::convolve_in_place(&mut row, mass);
        }
        for &idx in &self.rule_order {
            let rs = &self.rule_states[idx as usize];
            if !rs.completed {
                dp::convolve_in_place(&mut row, rs.mass);
            }
        }
        row
    }

    /// Rules that currently have absorbed members but are not (known to be)
    /// complete, with their absorbed mass. Used by the early-exit upper
    /// bound: a future member of such a rule excludes this mass from its
    /// dominant set.
    pub(crate) fn open_rules(&self) -> Vec<(RuleKey, f64)> {
        self.rule_order
            .iter()
            .map(|&idx| &self.rule_states[idx as usize])
            .filter(|rs| !rs.completed)
            .map(|rs| (rs.key, rs.mass))
            .collect()
    }

    /// Whether a previously-built entry still denotes a live, unchanged
    /// pseudo-tuple for a step whose tuple belongs to `own_rule`.
    fn entry_still_valid(&self, e: &PoolEntry, own_rule: Option<RuleKey>) -> bool {
        match e {
            PoolEntry::Indep { .. } => true,
            PoolEntry::Rule {
                key, idx, absorbed, ..
            } => Some(*key) != own_rule && self.rule_states[*idx as usize].absorbed == *absorbed,
        }
    }

    /// The canonical (aggressive) ordering of the current pool, excluding
    /// `own_rule` (Corollary 2) and — when `skip_stamp` is set — every
    /// entry already stamped into the lazy kept prefix: stable group first
    /// in availability order, then open rule-tuples by next-member rank
    /// descending (falling back to absorption recency, oldest first, when
    /// the layout is unknown).
    fn canonical_list(&self, own_rule: Option<RuleKey>, skip_stamp: Option<u64>) -> Vec<PoolEntry> {
        let mut list = Vec::with_capacity(self.stable.len() + 4);
        for item in &self.stable {
            let (kept, e) = match *item {
                StableItem::Indep { tag, prob } => (
                    self.kept_indep_stamp.get(tag).copied().unwrap_or(0),
                    PoolEntry::Indep { tag, prob },
                ),
                StableItem::CompletedRule(idx) => {
                    let rs = &self.rule_states[idx as usize];
                    (
                        rs.kept_stamp,
                        PoolEntry::Rule {
                            key: rs.key,
                            idx,
                            absorbed: rs.absorbed,
                            mass: rs.mass,
                        },
                    )
                }
            };
            // `skip_stamp` is always >= 1 when set, so an unstamped entry
            // (kept == 0) is never skipped.
            if skip_stamp != Some(kept) {
                list.push(e);
            }
        }
        let mut open: Vec<((u8, usize), PoolEntry)> = Vec::new();
        for &idx in &self.rule_order {
            let rs = &self.rule_states[idx as usize];
            if rs.completed || Some(rs.key) == own_rule {
                continue;
            }
            if skip_stamp.is_some_and(|s| rs.kept_stamp == s) {
                continue;
            }
            // Known next-member ranks sort descending ahead of the
            // recency-ordered remainder (oldest touch first).
            let order = match rs.next_rank {
                Some(rank) => (0u8, usize::MAX - rank),
                None => (1u8, rs.last_touch),
            };
            open.push((
                order,
                PoolEntry::Rule {
                    key: rs.key,
                    idx,
                    absorbed: rs.absorbed,
                    mass: rs.mass,
                },
            ));
        }
        open.sort_by_key(|(order, _)| *order);
        list.extend(open.into_iter().map(|(_, e)| e));
        list
    }
}

/// Length of the longest common prefix of two entry lists (by
/// [`PoolEntry::same`]).
fn common_prefix(a: &[PoolEntry], b: &[PoolEntry]) -> usize {
    a.iter()
        .zip(b.iter())
        .take_while(|(x, y)| x.same(y))
        .count()
}

/// Theorem 3(2)/4 pruning state for one rule.
#[derive(Debug, Clone, Copy, Default)]
struct RuleFail {
    /// Whole rule pruned: it is ranked entirely below a failed independent
    /// tuple with `Pr(t) >= Pr(R)` (Theorem 3(2)).
    failed_whole: bool,
    /// Largest membership probability among failed members seen so far
    /// (Theorem 4).
    failed_member_max: f64,
}

/// An upper bound on `Pr^k(t')` for every tuple `t'` not yet scanned.
///
/// For a future independent tuple, the dominant set contains at least the
/// whole current pool, so `Σ_{j<k} Pr(S, j)` over the pool bounds its Eq. 4
/// factor (the partial sum is non-increasing as elements are added or
/// gain mass). For a future member of an open rule `R`, the dominant set
/// excludes `R`'s own rule-tuple, so the bound deconvolves that entry out.
/// Membership probability is bounded by 1.
fn future_upper_bound(comp: &Compressor) -> f64 {
    let pool = comp.pool_row();
    let mut ub: f64 = dp::partial_sum(&pool);
    for (_, mass) in comp.open_rules() {
        let without = match dp::deconvolve(&pool, mass) {
            // Slack covers mass the ill-conditioned inversion can shed
            // without tripping its own guards; losing it here would make
            // the bound non-conservative.
            Some(row) => dp::partial_sum(&row) + dp::DECONVOLVE_MASS_SLACK,
            // Numerically unsafe to remove: give up on bounding members of
            // this rule (conservative).
            None => 1.0,
        };
        ub = ub.max(without);
    }
    ub.min(1.0)
}

/// Executes a [`PtkPlan`] over any [`RankedSource`].
///
/// This is the single implementation behind every public entry point; see
/// the module docs. Construct with [`PtkExecutor::new`] (no observability)
/// or [`PtkExecutor::with_recorder`].
pub struct PtkExecutor<'a> {
    plan: &'a PtkPlan,
    recorder: &'a dyn Recorder,
    tracer: Option<&'a Tracer>,
}

impl<'a> PtkExecutor<'a> {
    /// An executor for `plan` without observability.
    pub fn new(plan: &'a PtkPlan) -> PtkExecutor<'a> {
        PtkExecutor {
            plan,
            recorder: &Noop,
            tracer: None,
        }
    }

    /// An executor for `plan` recording execution counters (under the
    /// [`counters`] names), the answer count, and per-phase wall-clock
    /// spans (`engine.phase.retrieval`, `engine.phase.reorder`,
    /// `engine.phase.dp`, `engine.phase.bound`, under an `engine.query`
    /// umbrella span) into `recorder`. With a disabled recorder no clock is
    /// ever read.
    pub fn with_recorder(plan: &'a PtkPlan, recorder: &'a dyn Recorder) -> PtkExecutor<'a> {
        PtkExecutor {
            plan,
            recorder,
            tracer: None,
        }
    }

    /// Attaches a structured trace emitter (see [`ptk_obs::Tracer`]): the
    /// scan then emits a [`Stage::Query`] span, per-decision instants
    /// ([`Mark::Prune`] with the Theorem 3/4 rule that fired,
    /// [`Mark::Answer`], [`Mark::Stop`] with the Theorem 5 / upper-bound
    /// rule), and one synthetic span per plan phase laid out from the
    /// accumulated [`PhaseClock`] totals. A disabled tracer costs one
    /// branch per decision and reads no clock.
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> PtkExecutor<'a> {
        self.tracer = Some(tracer);
        self
    }

    /// The plan being executed.
    pub fn plan(&self) -> &PtkPlan {
        self.plan
    }

    /// Runs the plan's scan over `source`: pulls tuples in ranking order,
    /// computes each retrieved tuple's exact top-k probability, and — when
    /// the plan has pruning on — stops retrieving as soon as the §4.4 rules
    /// certify that no further tuple can pass the scan threshold.
    ///
    /// # Panics
    /// Panics if the source delivers scores out of order.
    pub fn execute<S: RankedSource + ?Sized>(&self, source: &mut S) -> PtkResult {
        let options = *self.plan.options();
        let k = self.plan.k();
        let threshold = self.plan.scan_threshold();
        let recorder = self.recorder;
        let tracer = self.tracer.filter(|t| t.enabled());
        let _query_span = ptk_obs::span(recorder, "engine.query");
        // Phase clocks also run when only a tracer is attached, so the
        // synthetic phase spans carry real totals without --stats.
        let clocks_live = recorder.enabled() || tracer.is_some();
        let mut retrieval_clock = PhaseClock::enabled_if(clocks_live);
        let mut reorder_clock = PhaseClock::enabled_if(clocks_live);
        let mut dp_clock = PhaseClock::enabled_if(clocks_live);
        let mut bound_clock = PhaseClock::enabled_if(clocks_live);
        let query_begin = tracer.map_or(0, |t| t.begin(Stage::Query));
        let mut bound_checks = 0u64;

        let mut comp = Compressor::new(k, options.variant);
        let mut stats = ExecStats::default();
        let mut probabilities: Vec<Option<f64>> = Vec::new();
        let mut answers: Vec<AnswerTuple> = Vec::new();
        // Theorem 5 state: sum of the answers' top-k probabilities.
        let mut answer_mass = 0.0f64;
        // Theorem 3 state: the largest membership probability among failed
        // independent tuples scanned so far.
        let mut failed_member_max = 0.0f64;
        // Theorem 3(2) / Theorem 4 state, per rule.
        let mut rule_fail: HashMap<RuleKey, RuleFail> = HashMap::new();
        let mut last_score = f64::INFINITY;

        while let Some(tuple) = retrieval_clock.time(|| source.next_ranked()) {
            assert!(
                tuple.score <= last_score + 1e-9,
                "source delivered scores out of order: {} after {last_score}",
                tuple.score
            );
            last_score = tuple.score;
            let rank = stats.scanned;
            stats.scanned += 1;

            // Pruning decision (Theorems 3 and 4).
            let mut pruned_membership = false;
            let mut pruned_rule = false;
            let mut prune_rule_fired = None;
            if options.pruning {
                match tuple.rule {
                    None => {
                        pruned_membership = tuple.prob <= failed_member_max;
                        if pruned_membership {
                            prune_rule_fired = Some(PruneRule::Theorem3Membership);
                        }
                    }
                    Some(key) => {
                        let first_encounter = comp.absorbed(key) == 0;
                        let rf = rule_fail.entry(key).or_default();
                        // First encounter of the rule: Theorem 3(2), when
                        // the source knows the rule's total mass.
                        if first_encounter {
                            if let Some(mass) = source.rule_mass(key) {
                                if mass <= failed_member_max {
                                    rf.failed_whole = true;
                                }
                            }
                        }
                        if rf.failed_whole {
                            pruned_rule = true;
                            prune_rule_fired = Some(PruneRule::Theorem3WholeRule);
                        } else if tuple.prob <= rf.failed_member_max {
                            pruned_rule = true;
                            prune_rule_fired = Some(PruneRule::Theorem4RuleMember);
                        }
                    }
                }
            }

            if pruned_membership || pruned_rule {
                if pruned_membership {
                    stats.pruned_membership += 1;
                } else {
                    stats.pruned_rule += 1;
                }
                if let (Some(t), Some(rule)) = (tracer, prune_rule_fired) {
                    t.instant(Mark::Prune {
                        rank: rank as u64,
                        rule,
                    });
                }
                probabilities.push(None);
            } else {
                let desired = reorder_clock.time(|| comp.desired_list(tuple.rule));
                dp_clock.time(|| comp.recompute(desired));
                let prk = tuple.prob * dp::partial_sum(comp.last_row());
                stats.evaluated += 1;
                probabilities.push(Some(prk));
                if prk >= threshold {
                    answers.push(AnswerTuple {
                        rank,
                        id: tuple.id,
                        score: tuple.score,
                        probability: prk,
                    });
                    answer_mass += prk;
                    if let Some(t) = tracer {
                        t.instant(Mark::Answer { rank: rank as u64 });
                    }
                } else if options.pruning {
                    match tuple.rule {
                        None => failed_member_max = failed_member_max.max(tuple.prob),
                        Some(key) => {
                            let rf = rule_fail.entry(key).or_default();
                            rf.failed_member_max = rf.failed_member_max.max(tuple.prob);
                        }
                    }
                }
            }

            // Fold the tuple into the pool, with whatever layout hints the
            // source can give.
            let (rule_len, next_member_rank) = match tuple.rule {
                Some(key) => (
                    source.rule_len(key),
                    source.rule_member_rank(key, comp.absorbed(key) as usize + 1),
                ),
                None => (None, None),
            };
            comp.absorb(AbsorbSpec {
                tag: rank,
                prob: tuple.prob,
                rule: tuple.rule,
                rule_len,
                next_member_rank,
            });

            if options.pruning {
                // Theorem 5: the total top-k probability over all tuples is
                // at most k, so once the answers hold more than k − p of
                // it, no other tuple can reach p.
                if answer_mass > k as f64 - threshold {
                    stats.stop = Some(StopReason::TotalTopK);
                    if let Some(t) = tracer {
                        t.instant(Mark::Stop {
                            rule: StopRule::Theorem5TotalTopK,
                        });
                    }
                    break;
                }
                // Early-exit upper bound (line 6 of Figure 3), checked
                // periodically: if even the most favourable future tuple
                // cannot reach the threshold, stop.
                if stats.scanned % options.ub_check_interval.max(1) == 0 {
                    bound_checks += 1;
                    if bound_clock.time(|| future_upper_bound(&comp)) < threshold {
                        stats.stop = Some(StopReason::UpperBound);
                        if let Some(t) = tracer {
                            t.instant(Mark::Stop {
                                rule: StopRule::UpperBound,
                            });
                        }
                        break;
                    }
                }
            }
        }

        stats.dp_cells = comp.dp_cells();
        stats.entries_recomputed = comp.entries_recomputed();
        stats.rules_compressed = comp.rules_compressed();
        if let Some(t) = tracer {
            // Phase totals rendered as synthetic back-to-back child spans
            // of the query span. The layout (not the interleaving) is what
            // a flame view needs; the per-decision instants above carry the
            // scan-order story.
            let mut at = query_begin;
            let phases = [
                (
                    Stage::Retrieval,
                    retrieval_clock.nanos(),
                    Payload::Retrieval {
                        tuples: stats.scanned as u64,
                    },
                ),
                (
                    Stage::Reorder,
                    reorder_clock.nanos(),
                    Payload::Reorder {
                        rules_compressed: stats.rules_compressed,
                    },
                ),
                (
                    Stage::Dp,
                    dp_clock.nanos(),
                    Payload::Dp {
                        cells: stats.dp_cells,
                        entries: stats.entries_recomputed,
                    },
                ),
                (
                    Stage::Bound,
                    bound_clock.nanos(),
                    Payload::Bound {
                        checks: bound_checks,
                    },
                ),
            ];
            for (stage, nanos, payload) in phases {
                t.span_at(stage, at, at + nanos, payload);
                at += nanos;
            }
            t.end(
                Stage::Query,
                Payload::Scan {
                    scanned: stats.scanned as u64,
                    evaluated: stats.evaluated as u64,
                    pruned_membership: stats.pruned_membership as u64,
                    pruned_rule: stats.pruned_rule as u64,
                    answers: answers.len() as u64,
                },
            );
        }
        retrieval_clock.flush(recorder, "engine.phase.retrieval");
        reorder_clock.flush(recorder, "engine.phase.reorder");
        dp_clock.flush(recorder, "engine.phase.dp");
        bound_clock.flush(recorder, "engine.phase.bound");
        stats.record_to(recorder);
        recorder.add(counters::ANSWERS, answers.len() as u64);
        PtkResult {
            answers,
            probabilities,
            stats,
        }
    }

    /// Runs this executor's plan against a shared ranked snapshot, using
    /// `pool` for **intra-query** parallelism when the plan is eligible.
    ///
    /// With one worker, or a plan that prunes (the §4.4 rules are
    /// inherently sequential — what gets pruned depends on everything
    /// scanned before it), this forks a cursor and runs the sequential
    /// [`PtkExecutor::execute`]. Otherwise the scan layout is materialized
    /// once, partitioned at rule-closed cuts into segments, and the
    /// per-segment subset-probability DP runs on the pool's deterministic
    /// stealing scheduler; prefix state is stitched at the boundaries, and
    /// the answers, probabilities and [`ExecStats`] are **bit-identical**
    /// to the sequential scan at every pool width (see
    /// `Compressor::from_boundary` for the argument). Scans too small or
    /// too rule-tangled to partition fall back to the whole-scan path.
    ///
    /// Tracing: a partitioned execution emits one [`Stage::Segment`] span
    /// per segment — segment boundaries are a pure function of the rule
    /// layout, never of the pool width — followed by the answer marks in
    /// rank order, all under the [`Stage::Query`] span, instead of the
    /// sequential per-phase spans.
    pub fn execute_snapshot<S: SnapshotSource + ?Sized>(
        &self,
        source: &S,
        pool: &ThreadPool,
    ) -> PtkResult {
        if pool.threads() <= 1 || self.plan.options().pruning {
            let mut cursor = source.fork();
            return self.execute(cursor.as_mut());
        }
        let layout = ScanLayout::materialize(source);
        let tasks = plan_segment_tasks(&layout, self.plan.k());
        if tasks.len() < 2 {
            let mut cursor = LayoutCursor::new(&layout);
            return self.execute(&mut cursor);
        }
        self.run_partitioned(&layout, &tasks, pool)
    }

    /// The partitioned deep-scan path of [`PtkExecutor::execute_snapshot`].
    fn run_partitioned(
        &self,
        layout: &ScanLayout,
        tasks: &[SegmentTask],
        pool: &ThreadPool,
    ) -> PtkResult {
        let recorder = self.recorder;
        let _query_span = ptk_obs::span(recorder, "engine.query");
        let tracer = self.tracer.filter(|t| t.enabled());
        let clocks_live = recorder.enabled() || tracer.is_some();
        let query_begin = tracer.map_or(0, |t| t.begin(Stage::Query));
        let plan = self.plan;
        let outcomes = pool.parallel_map_stealing(tasks, |_, task| {
            run_segment(plan, layout, task, clocks_live)
        });
        if let Some(t) = tracer {
            // Segment spans laid back to back from the query's start, each
            // sized by its measured DP time — the same synthetic layout the
            // sequential path uses for its phase spans.
            let mut at = query_begin;
            for (s, (task, out)) in tasks.iter().zip(&outcomes).enumerate() {
                let nanos = out.reorder_nanos + out.dp_nanos;
                t.span_at(
                    Stage::Segment,
                    at,
                    at + nanos,
                    Payload::Segment {
                        index: s as u64,
                        start_rank: task.start as u64,
                        tuples: (task.end - task.start) as u64,
                    },
                );
                at += nanos;
            }
        }
        let (result, reorder_nanos, dp_nanos) = stitch_segments(layout.len(), outcomes);
        if let Some(t) = tracer {
            for a in &result.answers {
                t.instant(Mark::Answer {
                    rank: a.rank as u64,
                });
            }
            t.end(
                Stage::Query,
                Payload::Scan {
                    scanned: result.stats.scanned as u64,
                    evaluated: result.stats.evaluated as u64,
                    pruned_membership: 0,
                    pruned_rule: 0,
                    answers: result.answers.len() as u64,
                },
            );
        }
        recorder.record_nanos("engine.phase.reorder", reorder_nanos);
        recorder.record_nanos("engine.phase.dp", dp_nanos);
        result.stats.record_to(recorder);
        recorder.add(counters::ANSWERS, result.answers.len() as u64);
        result
    }

    /// Evaluates a batch of independent plans against one shared ranked
    /// snapshot on `pool`'s deterministic work-stealing scheduler.
    ///
    /// The rule layout is compressed **once** against the shared source
    /// (`ScanLayout`): each query replays the materialized scan instead
    /// of forking its own cursor and re-deriving the layout tuple by
    /// tuple, and plans whose scan can be partitioned at rule-closed cuts
    /// (pruning off, scan deep enough) are split into per-segment DP tasks
    /// so one expensive query no longer serializes the batch. Every
    /// per-query answer — probabilities to the bit (`f64::to_bits`) and
    /// the full [`ExecStats`] — is identical to a sequential evaluation of
    /// that plan, at every pool width and under any steal interleaving:
    /// the replay is exact, segment boundaries are a pure function of the
    /// layout, and results are reassembled in plan order.
    ///
    /// A single-worker pool short-circuits to a plain sequential loop that
    /// never touches the pool; a lone pruning plan keeps its plain forked
    /// cursor (materializing the layout would scan the whole source even
    /// if the query stops early).
    pub fn execute_batch<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
    ) -> Vec<PtkResult> {
        Self::batch_inner(batch, source, pool, false).0
    }

    /// Like [`PtkExecutor::execute_batch`], but recording: the returned
    /// [`Snapshot`] merges every query's counters in plan order, so it is
    /// identical at every pool width — only the wall-clock timing section
    /// and the `scheduler` section (workers spawned, steals, segments;
    /// runtime facts by nature) vary, and [`Snapshot::to_json`] already
    /// excludes both from deterministic output.
    ///
    /// On a single-worker pool the batch runs as a plain sequential loop
    /// recording into **one** shared registry — no per-query registries,
    /// no merge, no pool; recording into one registry is bit-equal to the
    /// merge because counters are sums either way. The snapshot's
    /// `batch.workers_spawned` scheduler fact is then 0.
    pub fn execute_batch_recorded<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
    ) -> (Vec<PtkResult>, Snapshot) {
        let (results, snapshot) = Self::batch_inner(batch, source, pool, true);
        (
            results,
            snapshot.expect("recorded batches always build a snapshot"),
        )
    }

    /// The shared batch driver behind [`PtkExecutor::execute_batch`] and
    /// [`PtkExecutor::execute_batch_recorded`].
    fn batch_inner<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
        record: bool,
    ) -> (Vec<PtkResult>, Option<Snapshot>) {
        let plans = batch.plans();
        // A materialized layout pays for itself when several queries share
        // it or a single deep scan can be partitioned over it; a lone
        // pruning query keeps the plain fork.
        let layout_pays = plans.len() >= 2 || plans.iter().any(|p| !p.options().pruning);
        if pool.threads() <= 1 || !layout_pays {
            // Sequential short-circuit: no workers, no per-query
            // registries, no merge — one shared registry accumulates every
            // query, which is bit-equal to merging per-query snapshots.
            let shared = record.then(Metrics::new);
            let mut results = Vec::with_capacity(plans.len());
            for plan in plans {
                let mut cursor = source.fork();
                results.push(match &shared {
                    Some(metrics) => {
                        PtkExecutor::with_recorder(plan, metrics).execute(cursor.as_mut())
                    }
                    None => PtkExecutor::new(plan).execute(cursor.as_mut()),
                });
            }
            let snapshot = shared.map(|metrics| {
                let mut snap = metrics.snapshot();
                let inline = StealStats {
                    workers_spawned: 0,
                    tasks: plans.len() as u64,
                    stolen: 0,
                };
                publish_scheduler(&mut snap, inline, 0, 0);
                snap
            });
            return (results, snapshot);
        }

        let layout = ScanLayout::materialize(source);
        let mut tasks: Vec<BatchTask> = Vec::new();
        let mut segmented_queries = 0u64;
        for (p, plan) in plans.iter().enumerate() {
            let segs = if plan.options().pruning {
                Vec::new()
            } else {
                plan_segment_tasks(&layout, plan.k())
            };
            if segs.is_empty() {
                tasks.push(BatchTask::Whole { plan_idx: p });
            } else {
                segmented_queries += 1;
                tasks.extend(
                    segs.into_iter()
                        .map(|task| BatchTask::Segment { plan_idx: p, task }),
                );
            }
        }
        let segment_count = tasks
            .iter()
            .filter(|t| matches!(t, BatchTask::Segment { .. }))
            .count() as u64;

        let layout_ref = &layout;
        let (outs, steal) = pool.parallel_map_stealing_stats(&tasks, |_, task| match task {
            BatchTask::Whole { plan_idx } => {
                let plan = &plans[*plan_idx];
                let mut cursor = LayoutCursor::new(layout_ref);
                if record {
                    let metrics = Metrics::new();
                    let result = PtkExecutor::with_recorder(plan, &metrics).execute(&mut cursor);
                    TaskOut::Whole(result, Some(metrics.snapshot()))
                } else {
                    TaskOut::Whole(PtkExecutor::new(plan).execute(&mut cursor), None)
                }
            }
            BatchTask::Segment { plan_idx, task } => {
                TaskOut::Segment(run_segment(&plans[*plan_idx], layout_ref, task, record))
            }
        });

        // Reassemble per plan: whole results land directly, segment
        // outcomes stitch. Tasks were issued in plan order with segments
        // in rank order, so a linear walk preserves both.
        let mut whole: Vec<Option<(PtkResult, Option<Snapshot>)>> =
            (0..plans.len()).map(|_| None).collect();
        let mut seg_outs: Vec<Vec<SegmentOutcome>> = (0..plans.len()).map(|_| Vec::new()).collect();
        for (task, out) in tasks.iter().zip(outs) {
            match (task, out) {
                (BatchTask::Whole { plan_idx }, TaskOut::Whole(result, snap)) => {
                    whole[*plan_idx] = Some((result, snap));
                }
                (BatchTask::Segment { plan_idx, .. }, TaskOut::Segment(outcome)) => {
                    seg_outs[*plan_idx].push(outcome);
                }
                _ => unreachable!("task kinds round-trip through the pool"),
            }
        }
        let mut merged = record.then(Snapshot::default);
        let mut results = Vec::with_capacity(plans.len());
        for (p, slot) in whole.into_iter().enumerate() {
            let (result, snap) = match slot {
                Some(pair) => pair,
                None => {
                    let (result, reorder_nanos, dp_nanos) =
                        stitch_segments(layout.len(), std::mem::take(&mut seg_outs[p]));
                    let snap = record.then(|| {
                        // Mirror what a sequential recorded run of this
                        // plan would put in its registry: the exec
                        // counters, the answer count, and the phase
                        // timings (timings are non-deterministic and
                        // excluded from deterministic renderings anyway).
                        let metrics = Metrics::new();
                        result.stats.record_to(&metrics);
                        metrics.add(counters::ANSWERS, result.answers.len() as u64);
                        metrics.record_nanos("engine.phase.reorder", reorder_nanos);
                        metrics.record_nanos("engine.phase.dp", dp_nanos);
                        metrics.record_nanos("engine.query", reorder_nanos + dp_nanos);
                        metrics.snapshot()
                    });
                    (result, snap)
                }
            };
            if let (Some(m), Some(s)) = (merged.as_mut(), snap.as_ref()) {
                m.merge(s);
            }
            results.push(result);
        }
        if let Some(m) = merged.as_mut() {
            publish_scheduler(m, steal, segment_count, segmented_queries);
        }
        (results, merged)
    }

    /// Like [`PtkExecutor::execute_batch_recorded`], but additionally
    /// traces every query into its own bounded [`RingSink`] of `capacity`
    /// events, returning the merged event stream alongside the results and
    /// snapshot.
    ///
    /// Traced batches steal at **whole-query** granularity only (never
    /// segmenting): keeping each query's scan sequential keeps its event
    /// stream exactly the sequential one. Each query gets its own
    /// [`Tracer`] whose query id is the plan index and whose sequence
    /// numbers start at 0, and the per-query event runs are concatenated
    /// in plan order — so the *logical* event stream
    /// ([`ptk_obs::render_logical`]) is a pure function of the batch at
    /// every pool width. The worker id stamped on the events is the
    /// query's home lane (`i % workers`, a pure function of
    /// `(batch.len(), threads)`) regardless of which worker stole it, and
    /// all tracers share one epoch so the wall-clock export lines queries
    /// up on a common timeline.
    pub fn execute_batch_traced<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
        capacity: usize,
    ) -> (Vec<PtkResult>, Snapshot, Vec<TraceEvent>) {
        let epoch = Instant::now();
        let plans = batch.plans();
        let lanes = pool.threads().min(plans.len()).max(1);
        let layout =
            (pool.threads() > 1 && plans.len() >= 2).then(|| ScanLayout::materialize(source));
        let (per_query, steal) = pool.parallel_map_stealing_stats(plans, |i, plan| {
            let sink = Arc::new(RingSink::new(capacity));
            let tracer = Tracer::with_epoch(
                Arc::clone(&sink) as SharedSink,
                i as u32,
                (i % lanes) as u32,
                epoch,
            );
            let metrics = Metrics::new();
            let executor = PtkExecutor::with_recorder(plan, &metrics).with_tracer(&tracer);
            let result = match layout.as_ref() {
                Some(l) => executor.execute(&mut LayoutCursor::new(l)),
                None => {
                    let mut cursor = source.fork();
                    executor.execute(cursor.as_mut())
                }
            };
            (result, metrics.snapshot(), sink.events())
        });
        let mut merged = Snapshot::default();
        let mut results = Vec::with_capacity(per_query.len());
        let mut events = Vec::new();
        for (result, snapshot, run) in per_query {
            merged.merge(&snapshot);
            events.extend(run);
            results.push(result);
        }
        publish_scheduler(&mut merged, steal, 0, 0);
        (results, merged, events)
    }
}

/// Policy floor: partitioned scans aim for segments of at least this many
/// ranks — below that the boundary bookkeeping outweighs the DP saved.
const MIN_SEGMENT_TUPLES: usize = 128;
/// Policy cap on segments per query, bounding boundary-row storage.
const MAX_SEGMENTS: usize = 16;

/// One segment of a partitioned scan: the rank range plus the seeded
/// compressor state at its opening boundary (see
/// [`Compressor::from_boundary`]).
#[derive(Debug)]
struct SegmentTask {
    start: usize,
    end: usize,
    /// Stable items available before `start - 1` — the length of the
    /// sequential entry list at the boundary.
    entry_count: usize,
    /// DP row of that entry list. Empty for the first segment.
    boundary_row: Vec<f64>,
}

/// What one segment run reports back for stitching.
#[derive(Debug)]
struct SegmentOutcome {
    /// `Pr^k` per rank of the segment (pruning is off, so every rank has
    /// an exact probability).
    probabilities: Vec<f64>,
    answers: Vec<AnswerTuple>,
    dp_cells: u64,
    entries_recomputed: u64,
    /// Rules first absorbed inside this segment. Rule closure makes rule
    /// sets disjoint across segments, so these sum to the sequential
    /// `rules_compressed`.
    new_rules: u64,
    reorder_nanos: u64,
    dp_nanos: u64,
}

/// One unit of batch work for the stealing scheduler.
#[derive(Debug)]
enum BatchTask {
    /// A plan that runs as one sequential scan over the shared layout.
    Whole { plan_idx: usize },
    /// One segment of a partitioned plan.
    Segment { plan_idx: usize, task: SegmentTask },
}

/// The result of one [`BatchTask`].
enum TaskOut {
    Whole(PtkResult, Option<Snapshot>),
    Segment(SegmentOutcome),
}

/// Publishes runtime scheduling facts into a snapshot's `scheduler`
/// section — diagnostics excluded from deterministic renderings, since
/// steal counts depend on OS timing.
fn publish_scheduler(
    snapshot: &mut Snapshot,
    steal: StealStats,
    segments: u64,
    segmented_queries: u64,
) {
    snapshot
        .scheduler
        .insert("batch.workers_spawned", steal.workers_spawned);
    snapshot.scheduler.insert("batch.tasks", steal.tasks);
    snapshot.scheduler.insert("batch.steals", steal.stolen);
    snapshot.scheduler.insert("batch.segments", segments);
    snapshot
        .scheduler
        .insert("batch.segmented_queries", segmented_queries);
}

/// Partitions `layout` at rule-closed cuts and seeds each non-initial
/// segment with its boundary DP row — one `O(n·k)` chain of exactly the
/// convolutions the sequential scan performs over the stable items in
/// availability order, so each seeded row is bit-identical to the
/// sequential row it stands in for. Returns an empty vector when the
/// layout is not worth partitioning.
fn plan_segment_tasks(layout: &ScanLayout, k: usize) -> Vec<SegmentTask> {
    let cuts = layout.plan_segments(MIN_SEGMENT_TUPLES, MAX_SEGMENTS);
    if cuts.is_empty() {
        return Vec::new();
    }
    let n = layout.len();
    let mut tasks = Vec::with_capacity(cuts.len() + 1);
    let mut row = dp::unit_row(k);
    let mut folded = 0usize;
    let mut start = 0usize;
    for &end in cuts.iter().chain(std::iter::once(&n)) {
        let (entry_count, boundary_row) = if start == 0 {
            (0, Vec::new())
        } else {
            let m = layout.stable_before(start - 1);
            while folded < m {
                let mass = match layout.stable[folded].seed {
                    StableSeed::Indep { prob, .. } => prob,
                    StableSeed::Rule { mass, .. } => mass,
                };
                dp::convolve_in_place(&mut row, mass);
                folded += 1;
            }
            (m, row.clone())
        };
        tasks.push(SegmentTask {
            start,
            end,
            entry_count,
            boundary_row,
        });
        start = end;
    }
    tasks
}

/// Runs one segment of a pruning-off scan over the shared layout,
/// replaying the recorded per-rank hints. Bit-identical to the sequential
/// scan over the same ranks by the [`Compressor::from_boundary`] argument.
fn run_segment(
    plan: &PtkPlan,
    layout: &ScanLayout,
    task: &SegmentTask,
    clocks_live: bool,
) -> SegmentOutcome {
    let threshold = plan.scan_threshold();
    let mut comp = if task.start == 0 {
        Compressor::new(plan.k(), plan.options().variant)
    } else {
        Compressor::from_boundary(
            plan.k(),
            plan.options().variant,
            &layout.stable[..layout.stable_before(task.start)],
            task.entry_count,
            &task.boundary_row,
        )
    };
    let seeded_rules = comp.rules_compressed();
    let mut reorder_clock = PhaseClock::enabled_if(clocks_live);
    let mut dp_clock = PhaseClock::enabled_if(clocks_live);
    let mut probabilities = Vec::with_capacity(task.end - task.start);
    let mut answers = Vec::new();
    for rank in task.start..task.end {
        let rec = &layout.tuples[rank];
        let tuple = rec.tuple;
        let desired = reorder_clock.time(|| comp.desired_list(tuple.rule));
        dp_clock.time(|| comp.recompute(desired));
        let prk = tuple.prob * dp::partial_sum(comp.last_row());
        probabilities.push(prk);
        if prk >= threshold {
            answers.push(AnswerTuple {
                rank,
                id: tuple.id,
                score: tuple.score,
                probability: prk,
            });
        }
        comp.absorb(AbsorbSpec {
            tag: rank,
            prob: tuple.prob,
            rule: tuple.rule,
            rule_len: rec.rule_len,
            next_member_rank: rec.next_member_rank,
        });
    }
    SegmentOutcome {
        probabilities,
        answers,
        dp_cells: comp.dp_cells(),
        entries_recomputed: comp.entries_recomputed(),
        new_rules: comp.rules_compressed() - seeded_rules,
        reorder_nanos: reorder_clock.nanos(),
        dp_nanos: dp_clock.nanos(),
    }
}

/// Concatenates segment outcomes into the sequential result shape,
/// returning the summed reorder / DP nanos alongside.
fn stitch_segments(n: usize, segments: Vec<SegmentOutcome>) -> (PtkResult, u64, u64) {
    let mut stats = ExecStats {
        scanned: n,
        evaluated: n,
        ..ExecStats::default()
    };
    let mut probabilities = Vec::with_capacity(n);
    let mut answers = Vec::new();
    let (mut reorder_nanos, mut dp_nanos) = (0u64, 0u64);
    for seg in segments {
        stats.dp_cells += seg.dp_cells;
        stats.entries_recomputed += seg.entries_recomputed;
        stats.rules_compressed += seg.new_rules;
        probabilities.extend(seg.probabilities.into_iter().map(Some));
        answers.extend(seg.answers);
        reorder_nanos += seg.reorder_nanos;
        dp_nanos += seg.dp_nanos;
    }
    (
        PtkResult {
            answers,
            probabilities,
            stats,
        },
        reorder_nanos,
        dp_nanos,
    )
}
