//! The unified PT-k executor.
//!
//! [`PtkExecutor`] drives a [`PtkPlan`] over any [`RankedSource`]: it is the
//! single implementation of the paper's Figure 3 algorithm — one scan in
//! ranking order, rule-tuple compression (Corollaries 1–2), prefix-shared
//! subset-probability DP (§4.3.2), and the §4.4 pruning rules — behind both
//! the view-based (`evaluate_ptk*`) and source-based
//! (`evaluate_ptk_source*`) entry points, which are now thin wrappers.
//!
//! The dominant-set bookkeeping lives in the crate-internal [`Compressor`],
//! shared with [`Scanner`](crate::Scanner) (the view-specialized adapter).
//! Sources that expose rule layout ahead of time
//! ([`RankedSource::rule_len`] / [`RankedSource::rule_member_rank`]) get
//! the paper's full aggressive/lazy reordering — a `ViewSource` is then
//! *bit-identical* to the materialized engine; sources that cannot (e.g.
//! threshold-algorithm middleware) degrade gracefully to absorption-recency
//! ordering, which shares less but computes the same probabilities (Eq. 4
//! is order-independent).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ptk_access::{RankedSource, RuleKey, SnapshotSource};
use ptk_core::TupleId;
use ptk_obs::{
    Mark, Metrics, Noop, Payload, PhaseClock, PruneRule, Recorder, RingSink, SharedSink, Snapshot,
    Stage, StopRule, TraceEvent, Tracer,
};
use ptk_par::{StealStats, ThreadPool};

use crate::dp;
use crate::gf::{
    expected_ranks_closed, utopk_search, AbsorbSpec, Compressor, GfState, RankSemantics,
    ScanRecord, SemanticsAnswer, SemanticsError, SemanticsRow, UTOPK_MAX_STATES,
};
use crate::layout::{LayoutCursor, ScanLayout, StableSeed};
use crate::plan::{PtkBatch, PtkPlan};
use crate::stats::{counters, ExecStats, StopReason};

/// One answer of a PT-k evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerTuple {
    /// 0-based rank at which the tuple was scanned. For a view-backed
    /// execution this is the tuple's ranked position in the view.
    pub rank: usize,
    /// The tuple's id as reported by the source.
    pub id: TupleId,
    /// Its ranking score (a position stand-in when the source has none).
    pub score: f64,
    /// Its exact top-k probability `Pr^k`.
    pub probability: f64,
}

/// The result of a PT-k evaluation, shared by every entry point.
#[derive(Debug, Clone)]
pub struct PtkResult {
    /// Tuples whose top-k probability passes the scan threshold, in ranking
    /// order.
    pub answers: Vec<AnswerTuple>,
    /// `probabilities[rank]` is `Some(Pr^k)` when the engine computed the
    /// exact top-k probability of the tuple scanned at `rank`, and `None`
    /// when the tuple was pruned (its `Pr^k` is then known to be below the
    /// threshold). Tuples never scanned (early stop) are absent; the
    /// view-based wrappers pad with `None` to the view's length.
    pub probabilities: Vec<Option<f64>>,
    /// Execution counters. `scanned` equals the number of tuples actually
    /// pulled from the source.
    pub stats: ExecStats,
}

impl PtkResult {
    /// The answers' scan ranks (for a view, their ranked positions), in
    /// ranking order — the shape of the legacy view-based answer list.
    pub fn answer_ranks(&self) -> Vec<usize> {
        self.answers.iter().map(|a| a.rank).collect()
    }

    /// Sum of the top-k probabilities of the answers.
    pub fn answer_mass(&self) -> f64 {
        self.answers.iter().map(|a| a.probability).sum()
    }

    /// The answers passing `threshold` — for slicing a multi-threshold
    /// scan's result per requested threshold.
    pub fn answers_at(&self, threshold: f64) -> Vec<AnswerTuple> {
        self.answers
            .iter()
            .copied()
            .filter(|a| a.probability >= threshold)
            .collect()
    }
}

/// Theorem 3(2)/4 pruning state for one rule.
#[derive(Debug, Clone, Copy, Default)]
struct RuleFail {
    /// Whole rule pruned: it is ranked entirely below a failed independent
    /// tuple with `Pr(t) >= Pr(R)` (Theorem 3(2)).
    failed_whole: bool,
    /// Largest membership probability among failed members seen so far
    /// (Theorem 4).
    failed_member_max: f64,
}

/// An upper bound on `Pr^k(t')` for every tuple `t'` not yet scanned.
///
/// For a future independent tuple, the dominant set contains at least the
/// whole current pool, so `Σ_{j<k} Pr(S, j)` over the pool bounds its Eq. 4
/// factor (the partial sum is non-increasing as elements are added or
/// gain mass). For a future member of an open rule `R`, the dominant set
/// excludes `R`'s own rule-tuple, so the bound deconvolves that entry out.
/// Membership probability is bounded by 1.
fn future_upper_bound(comp: &Compressor) -> f64 {
    let pool = comp.pool_row();
    let mut ub: f64 = dp::partial_sum(&pool);
    for (_, mass) in comp.open_rules() {
        let without = match dp::deconvolve(&pool, mass) {
            // Slack covers mass the ill-conditioned inversion can shed
            // without tripping its own guards; losing it here would make
            // the bound non-conservative.
            Some(row) => dp::partial_sum(&row) + dp::DECONVOLVE_MASS_SLACK,
            // Numerically unsafe to remove: give up on bounding members of
            // this rule (conservative).
            None => 1.0,
        };
        ub = ub.max(without);
    }
    ub.min(1.0)
}

/// Executes a [`PtkPlan`] over any [`RankedSource`].
///
/// This is the single implementation behind every public entry point; see
/// the module docs. Construct with [`PtkExecutor::new`] (no observability)
/// or [`PtkExecutor::with_recorder`].
pub struct PtkExecutor<'a> {
    plan: &'a PtkPlan,
    recorder: &'a dyn Recorder,
    tracer: Option<&'a Tracer>,
}

impl<'a> PtkExecutor<'a> {
    /// An executor for `plan` without observability.
    pub fn new(plan: &'a PtkPlan) -> PtkExecutor<'a> {
        PtkExecutor {
            plan,
            recorder: &Noop,
            tracer: None,
        }
    }

    /// An executor for `plan` recording execution counters (under the
    /// [`counters`] names), the answer count, and per-phase wall-clock
    /// spans (`engine.phase.retrieval`, `engine.phase.reorder`,
    /// `engine.phase.dp`, `engine.phase.bound`, under an `engine.query`
    /// umbrella span) into `recorder`. With a disabled recorder no clock is
    /// ever read.
    pub fn with_recorder(plan: &'a PtkPlan, recorder: &'a dyn Recorder) -> PtkExecutor<'a> {
        PtkExecutor {
            plan,
            recorder,
            tracer: None,
        }
    }

    /// Attaches a structured trace emitter (see [`ptk_obs::Tracer`]): the
    /// scan then emits a [`Stage::Query`] span, per-decision instants
    /// ([`Mark::Prune`] with the Theorem 3/4 rule that fired,
    /// [`Mark::Answer`], [`Mark::Stop`] with the Theorem 5 / upper-bound
    /// rule), and one synthetic span per plan phase laid out from the
    /// accumulated [`PhaseClock`] totals. A disabled tracer costs one
    /// branch per decision and reads no clock.
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> PtkExecutor<'a> {
        self.tracer = Some(tracer);
        self
    }

    /// The plan being executed.
    pub fn plan(&self) -> &PtkPlan {
        self.plan
    }

    /// Runs the plan's scan over `source`: pulls tuples in ranking order,
    /// computes each retrieved tuple's exact top-k probability, and — when
    /// the plan has pruning on — stops retrieving as soon as the §4.4 rules
    /// certify that no further tuple can pass the scan threshold.
    ///
    /// # Panics
    /// Panics if the source delivers scores out of order.
    pub fn execute<S: RankedSource + ?Sized>(&self, source: &mut S) -> PtkResult {
        let options = *self.plan.options();
        let k = self.plan.k();
        let threshold = self.plan.scan_threshold();
        let recorder = self.recorder;
        let tracer = self.tracer.filter(|t| t.enabled());
        let _query_span = ptk_obs::span(recorder, "engine.query");
        // Phase clocks also run when only a tracer is attached, so the
        // synthetic phase spans carry real totals without --stats.
        let clocks_live = recorder.enabled() || tracer.is_some();
        let mut retrieval_clock = PhaseClock::enabled_if(clocks_live);
        let mut reorder_clock = PhaseClock::enabled_if(clocks_live);
        let mut dp_clock = PhaseClock::enabled_if(clocks_live);
        let mut bound_clock = PhaseClock::enabled_if(clocks_live);
        let query_begin = tracer.map_or(0, |t| t.begin(Stage::Query));
        let mut bound_checks = 0u64;

        let mut comp = Compressor::new(k, options.variant);
        let mut stats = ExecStats::default();
        let mut probabilities: Vec<Option<f64>> = Vec::new();
        let mut answers: Vec<AnswerTuple> = Vec::new();
        // Theorem 5 state: sum of the answers' top-k probabilities.
        let mut answer_mass = 0.0f64;
        // Theorem 3 state: the largest membership probability among failed
        // independent tuples scanned so far.
        let mut failed_member_max = 0.0f64;
        // Theorem 3(2) / Theorem 4 state, per rule.
        let mut rule_fail: HashMap<RuleKey, RuleFail> = HashMap::new();
        let mut last_score = f64::INFINITY;
        // Probability stripe of block-skipped records (reused across skips).
        let mut skip_probs: Vec<f64> = Vec::new();

        'scan: loop {
            // Block-grain Theorem 3(1): when a block-native source reports
            // that every remaining record in its current block is rule-free
            // with membership probability at most `failed_member_max`, the
            // per-tuple path below would prune each of them — so skip the
            // block's decode and replay exactly the effects the per-tuple
            // path would have had: per-record scan/prune counters, a `None`
            // probability, absorption into the pool (pruned tuples are in
            // later tuples' dominant sets), and the periodic upper-bound
            // check at the very same ranks. Theorem 5 cannot newly fire
            // here (the answer mass is unchanged), so answers, stats and
            // stop reasons stay bit-identical to the in-memory path.
            if options.pruning && failed_member_max > 0.0 {
                while let Some(bounds) = source.block_bounds() {
                    if bounds.records == 0
                        || !bounds.rule_free
                        || bounds.max_prob > failed_member_max
                    {
                        break;
                    }
                    let interval = options.ub_check_interval.max(1);
                    // Stop the batch at the next upper-bound checkpoint so
                    // the check runs against the same pool state (and at
                    // the same rank) as in the per-tuple path.
                    let until_check = interval - stats.scanned % interval;
                    skip_probs.clear();
                    let taken = retrieval_clock.time(|| {
                        source.skip_block(until_check.min(bounds.records), &mut skip_probs)
                    });
                    if taken == 0 {
                        break;
                    }
                    for &prob in &skip_probs[..taken] {
                        let rank = stats.scanned;
                        stats.scanned += 1;
                        stats.pruned_membership += 1;
                        stats.pruned_membership_block += 1;
                        if let Some(t) = tracer {
                            t.instant(Mark::Prune {
                                rank: rank as u64,
                                rule: PruneRule::Theorem3Membership,
                            });
                        }
                        probabilities.push(None);
                        comp.absorb(AbsorbSpec {
                            tag: rank,
                            prob,
                            rule: None,
                            rule_len: None,
                            next_member_rank: None,
                        });
                    }
                    if stats.scanned % interval == 0 {
                        bound_checks += 1;
                        if bound_clock.time(|| future_upper_bound(&comp)) < threshold {
                            stats.stop = Some(StopReason::UpperBound);
                            if let Some(t) = tracer {
                                t.instant(Mark::Stop {
                                    rule: StopRule::UpperBound,
                                });
                            }
                            break 'scan;
                        }
                    }
                }
            }
            let Some(tuple) = retrieval_clock.time(|| source.next_ranked()) else {
                break;
            };
            assert!(
                tuple.score <= last_score + 1e-9,
                "source delivered scores out of order: {} after {last_score}",
                tuple.score
            );
            last_score = tuple.score;
            let rank = stats.scanned;
            stats.scanned += 1;

            // Pruning decision (Theorems 3 and 4).
            let mut pruned_membership = false;
            let mut pruned_rule = false;
            let mut prune_rule_fired = None;
            if options.pruning {
                match tuple.rule {
                    None => {
                        pruned_membership = tuple.prob <= failed_member_max;
                        if pruned_membership {
                            prune_rule_fired = Some(PruneRule::Theorem3Membership);
                        }
                    }
                    Some(key) => {
                        let first_encounter = comp.absorbed(key) == 0;
                        let rf = rule_fail.entry(key).or_default();
                        // First encounter of the rule: Theorem 3(2), when
                        // the source knows the rule's total mass.
                        if first_encounter {
                            if let Some(mass) = source.rule_mass(key) {
                                if mass <= failed_member_max {
                                    rf.failed_whole = true;
                                }
                            }
                        }
                        if rf.failed_whole {
                            pruned_rule = true;
                            prune_rule_fired = Some(PruneRule::Theorem3WholeRule);
                        } else if tuple.prob <= rf.failed_member_max {
                            pruned_rule = true;
                            prune_rule_fired = Some(PruneRule::Theorem4RuleMember);
                        }
                    }
                }
            }

            if pruned_membership || pruned_rule {
                if pruned_membership {
                    // Attribution: this branch decoded the tuple, so the
                    // prune is tuple-grained (the block-grain counterpart
                    // bumps pruned_membership_block in the skip loop).
                    stats.pruned_membership += 1;
                } else {
                    stats.pruned_rule += 1;
                    if prune_rule_fired == Some(PruneRule::Theorem3WholeRule) {
                        stats.pruned_rule_whole += 1;
                    }
                }
                if let (Some(t), Some(rule)) = (tracer, prune_rule_fired) {
                    t.instant(Mark::Prune {
                        rank: rank as u64,
                        rule,
                    });
                }
                probabilities.push(None);
            } else {
                let desired = reorder_clock.time(|| comp.desired_list(tuple.rule));
                dp_clock.time(|| comp.recompute(desired));
                let prk = tuple.prob * dp::partial_sum(comp.last_row());
                stats.evaluated += 1;
                probabilities.push(Some(prk));
                if prk >= threshold {
                    answers.push(AnswerTuple {
                        rank,
                        id: tuple.id,
                        score: tuple.score,
                        probability: prk,
                    });
                    answer_mass += prk;
                    if let Some(t) = tracer {
                        t.instant(Mark::Answer { rank: rank as u64 });
                    }
                } else if options.pruning {
                    match tuple.rule {
                        None => failed_member_max = failed_member_max.max(tuple.prob),
                        Some(key) => {
                            let rf = rule_fail.entry(key).or_default();
                            rf.failed_member_max = rf.failed_member_max.max(tuple.prob);
                        }
                    }
                }
            }

            // Fold the tuple into the pool, with whatever layout hints the
            // source can give.
            let (rule_len, next_member_rank) = match tuple.rule {
                Some(key) => (
                    source.rule_len(key),
                    source.rule_member_rank(key, comp.absorbed(key) as usize + 1),
                ),
                None => (None, None),
            };
            comp.absorb(AbsorbSpec {
                tag: rank,
                prob: tuple.prob,
                rule: tuple.rule,
                rule_len,
                next_member_rank,
            });

            if options.pruning {
                // Theorem 5: the total top-k probability over all tuples is
                // at most k, so once the answers hold more than k − p of
                // it, no other tuple can reach p.
                if answer_mass > k as f64 - threshold {
                    stats.stop = Some(StopReason::TotalTopK);
                    if let Some(t) = tracer {
                        t.instant(Mark::Stop {
                            rule: StopRule::Theorem5TotalTopK,
                        });
                    }
                    break;
                }
                // Early-exit upper bound (line 6 of Figure 3), checked
                // periodically: if even the most favourable future tuple
                // cannot reach the threshold, stop.
                if stats.scanned % options.ub_check_interval.max(1) == 0 {
                    bound_checks += 1;
                    if bound_clock.time(|| future_upper_bound(&comp)) < threshold {
                        stats.stop = Some(StopReason::UpperBound);
                        if let Some(t) = tracer {
                            t.instant(Mark::Stop {
                                rule: StopRule::UpperBound,
                            });
                        }
                        break;
                    }
                }
            }
        }

        stats.dp_cells = comp.dp_cells();
        stats.entries_recomputed = comp.entries_recomputed();
        stats.rules_compressed = comp.rules_compressed();
        if let Some(t) = tracer {
            // Phase totals rendered as synthetic back-to-back child spans
            // of the query span. The layout (not the interleaving) is what
            // a flame view needs; the per-decision instants above carry the
            // scan-order story.
            let mut at = query_begin;
            let phases = [
                (
                    Stage::Retrieval,
                    retrieval_clock.nanos(),
                    Payload::Retrieval {
                        tuples: stats.scanned as u64,
                    },
                ),
                (
                    Stage::Reorder,
                    reorder_clock.nanos(),
                    Payload::Reorder {
                        rules_compressed: stats.rules_compressed,
                    },
                ),
                (
                    Stage::Dp,
                    dp_clock.nanos(),
                    Payload::Dp {
                        cells: stats.dp_cells,
                        entries: stats.entries_recomputed,
                    },
                ),
                (
                    Stage::Bound,
                    bound_clock.nanos(),
                    Payload::Bound {
                        checks: bound_checks,
                    },
                ),
            ];
            for (stage, nanos, payload) in phases {
                t.span_at(stage, at, at + nanos, payload);
                at += nanos;
            }
            t.end(
                Stage::Query,
                Payload::Scan {
                    scanned: stats.scanned as u64,
                    evaluated: stats.evaluated as u64,
                    pruned_membership: stats.pruned_membership as u64,
                    pruned_rule: stats.pruned_rule as u64,
                    answers: answers.len() as u64,
                },
            );
        }
        retrieval_clock.flush(recorder, "engine.phase.retrieval");
        reorder_clock.flush(recorder, "engine.phase.reorder");
        dp_clock.flush(recorder, "engine.phase.dp");
        bound_clock.flush(recorder, "engine.phase.bound");
        stats.record_to(recorder);
        recorder.add(counters::ANSWERS, answers.len() as u64);
        PtkResult {
            answers,
            probabilities,
            stats,
        }
    }

    /// Runs this executor's plan against a shared ranked snapshot, using
    /// `pool` for **intra-query** parallelism when the plan is eligible.
    ///
    /// With one worker, or a plan that prunes (the §4.4 rules are
    /// inherently sequential — what gets pruned depends on everything
    /// scanned before it), this forks a cursor and runs the sequential
    /// [`PtkExecutor::execute`]. Otherwise the scan layout is materialized
    /// once, partitioned at rule-closed cuts into segments, and the
    /// per-segment subset-probability DP runs on the pool's deterministic
    /// stealing scheduler; prefix state is stitched at the boundaries, and
    /// the answers, probabilities and [`ExecStats`] are **bit-identical**
    /// to the sequential scan at every pool width (see
    /// `Compressor::from_boundary` for the argument). Scans too small or
    /// too rule-tangled to partition fall back to the whole-scan path.
    ///
    /// Tracing: a partitioned execution emits one [`Stage::Segment`] span
    /// per segment — segment boundaries are a pure function of the rule
    /// layout, never of the pool width — followed by the answer marks in
    /// rank order, all under the [`Stage::Query`] span, instead of the
    /// sequential per-phase spans.
    pub fn execute_snapshot<S: SnapshotSource + ?Sized>(
        &self,
        source: &S,
        pool: &ThreadPool,
    ) -> PtkResult {
        if pool.threads() <= 1 || self.plan.options().pruning {
            let mut cursor = source.fork();
            return self.execute(cursor.as_mut());
        }
        let layout = ScanLayout::materialize(source);
        let tasks = plan_segment_tasks(&layout, self.plan.k());
        if tasks.len() < 2 {
            let mut cursor = LayoutCursor::new(&layout);
            return self.execute(&mut cursor);
        }
        self.run_partitioned(&layout, &tasks, pool)
    }

    /// Runs the plan under its [`RankSemantics`] over any [`RankedSource`].
    ///
    /// PT-k delegates to [`PtkExecutor::execute`] unchanged — same float
    /// operations in the same order, bit-identical answers, pruning and
    /// all. Every other semantics runs the unpruned generating-function
    /// scan (`GfState`, the `gf` module's core): one pass in ranking
    /// order maintaining the
    /// full-pool coefficient row incrementally, then the semantics'
    /// finisher over the collected per-rank data. Recording and tracing
    /// work exactly as for PT-k (same counter names and span layout, plus
    /// the `engine.gf.*` row counters).
    ///
    /// # Panics
    /// Panics if the source delivers scores out of order.
    pub fn execute_semantics<S: RankedSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<SemanticsAnswer, SemanticsError> {
        match self.plan.semantics() {
            RankSemantics::Ptk => Ok(SemanticsAnswer::Ptk(self.execute(source))),
            semantics => self.gf_scan(source, semantics),
        }
    }

    /// Like [`PtkExecutor::execute_semantics`], over a shared snapshot.
    ///
    /// PT-k keeps its partitioned [`PtkExecutor::execute_snapshot`] path.
    /// The other semantics fork a cursor and run the sequential gf scan
    /// whatever the pool width: their finishers are global functions of
    /// the whole scan (a vector search, a per-rank argmax, a top-k
    /// selection, an expectation), so one deterministic pass is both the
    /// simplest and a trivially bit-identical answer at every width.
    pub fn execute_semantics_snapshot<S: SnapshotSource + ?Sized>(
        &self,
        source: &S,
        pool: &ThreadPool,
    ) -> Result<SemanticsAnswer, SemanticsError> {
        match self.plan.semantics() {
            RankSemantics::Ptk => Ok(SemanticsAnswer::Ptk(self.execute_snapshot(source, pool))),
            semantics => {
                let mut cursor = source.fork();
                self.gf_scan(cursor.as_mut(), semantics)
            }
        }
    }

    /// The one generating-function scan behind every non-PT-k semantics.
    fn gf_scan<S: RankedSource + ?Sized>(
        &self,
        source: &mut S,
        semantics: RankSemantics,
    ) -> Result<SemanticsAnswer, SemanticsError> {
        debug_assert!(semantics != RankSemantics::Ptk);
        let options = *self.plan.options();
        let k = self.plan.k();
        let recorder = self.recorder;
        let tracer = self.tracer.filter(|t| t.enabled());
        let _query_span = ptk_obs::span(recorder, "engine.query");
        let clocks_live = recorder.enabled() || tracer.is_some();
        let mut retrieval_clock = PhaseClock::enabled_if(clocks_live);
        let mut dp_clock = PhaseClock::enabled_if(clocks_live);
        let mut finish_clock = PhaseClock::enabled_if(clocks_live);
        let query_begin = tracer.map_or(0, |t| t.begin(Stage::Query));

        // Whether the finisher consumes the per-rank coefficient rows
        // (U-KRanks / Global-Topk) or only the scan records (U-TopK's
        // conditional factors, expected-rank's closed form).
        let wants_rows = matches!(
            semantics,
            RankSemantics::UKRanks | RankSemantics::GlobalTopk
        );
        let mut gf = GfState::new(k, options.variant);
        let mut stats = ExecStats::default();
        let mut records: Vec<ScanRecord> = Vec::new();
        // Per-rule absorbed mass so far, for `mates_above`.
        let mut rule_seen: HashMap<RuleKey, f64> = HashMap::new();
        let mut prefix_above = 0.0f64;
        // U-KRanks streaming argmax: winner per rank j, scanned positions
        // ascending, strictly-better-by-1e-15 to win (ties keep the
        // earlier position — the literature's convention and the worlds
        // oracle's).
        let mut ukr_best_prob = vec![f64::NEG_INFINITY; if wants_rows { k } else { 0 }];
        let mut ukr_best_pos = vec![0usize; ukr_best_prob.len()];
        // Global-Topk: every tuple's `Pr^k`.
        let mut prks: Vec<f64> = Vec::new();
        let mut last_score = f64::INFINITY;

        while let Some(tuple) = retrieval_clock.time(|| source.next_ranked()) {
            assert!(
                tuple.score <= last_score + 1e-9,
                "source delivered scores out of order: {} after {last_score}",
                tuple.score
            );
            last_score = tuple.score;
            let rank = stats.scanned;
            stats.scanned += 1;
            stats.evaluated += 1;

            let mates_above = tuple
                .rule
                .map_or(0.0, |key| rule_seen.get(&key).copied().unwrap_or(0.0));
            records.push(ScanRecord {
                id: tuple.id,
                score: tuple.score,
                prob: tuple.prob,
                rule: tuple.rule,
                mates_above,
                prefix_above,
            });

            if wants_rows {
                // The coefficient row over the dominant set T(t): the pool
                // so far, own rule excluded (Corollary 2).
                let row = dp_clock.time(|| gf.row_excluding(tuple.rule));
                match semantics {
                    RankSemantics::UKRanks => {
                        for j in 0..k {
                            let pr = tuple.prob * row[j];
                            if pr > ukr_best_prob[j] + 1e-15 {
                                ukr_best_prob[j] = pr;
                                ukr_best_pos[j] = rank;
                            }
                        }
                    }
                    RankSemantics::GlobalTopk => {
                        prks.push(tuple.prob * dp::partial_sum(&row));
                    }
                    _ => unreachable!(),
                }
            }

            // Fold the tuple into the pool, with whatever layout hints the
            // source can give (they drive the refold fallback's ordering).
            let (rule_len, next_member_rank) = match tuple.rule {
                Some(key) => (
                    source.rule_len(key),
                    source.rule_member_rank(key, gf.absorbed(key) as usize + 1),
                ),
                None => (None, None),
            };
            dp_clock.time(|| {
                gf.absorb(AbsorbSpec {
                    tag: rank,
                    prob: tuple.prob,
                    rule: tuple.rule,
                    rule_len,
                    next_member_rank,
                })
            });
            if let Some(key) = tuple.rule {
                // Mirror the view's mass clamp so `mates_above` agrees
                // with the compressed pool bit for bit.
                let seen = rule_seen.entry(key).or_insert(0.0);
                *seen = (*seen + tuple.prob).min(1.0);
            }
            prefix_above += tuple.prob;
        }

        let make_row = |pos: usize, value: f64| SemanticsRow {
            position: pos,
            id: records[pos].id,
            score: records[pos].score,
            membership: records[pos].prob,
            value,
        };
        let answer = finish_clock.time(|| match semantics {
            RankSemantics::UTopK => {
                let (chosen, probability, states) = utopk_search(&records, k, UTOPK_MAX_STATES)?;
                Ok(SemanticsAnswer::UTopK {
                    rows: chosen
                        .into_iter()
                        .map(|pos| make_row(pos, records[pos].prob))
                        .collect(),
                    probability,
                    states_explored: states,
                })
            }
            RankSemantics::UKRanks => Ok(SemanticsAnswer::UKRanks(if records.is_empty() {
                Vec::new()
            } else {
                // One winner per rank, even when no tuple can occupy it
                // (probability clamps to 0) — the answer shape callers and
                // the oracle expect.
                (0..k)
                    .map(|j| make_row(ukr_best_pos[j], ukr_best_prob[j].max(0.0)))
                    .collect()
            })),
            RankSemantics::GlobalTopk => {
                let mut order: Vec<usize> = (0..prks.len()).collect();
                order.sort_by(|&a, &b| prks[b].total_cmp(&prks[a]).then(a.cmp(&b)));
                order.truncate(k);
                Ok(SemanticsAnswer::GlobalTopk(
                    order
                        .into_iter()
                        .map(|pos| make_row(pos, prks[pos]))
                        .collect(),
                ))
            }
            RankSemantics::ExpectedRank => {
                let ranks = expected_ranks_closed(&records);
                let mut order: Vec<usize> = (0..ranks.len()).collect();
                order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then(a.cmp(&b)));
                order.truncate(k);
                Ok(SemanticsAnswer::ExpectedRank(
                    order
                        .into_iter()
                        .map(|pos| make_row(pos, ranks[pos]))
                        .collect(),
                ))
            }
            RankSemantics::Ptk => unreachable!(),
        });
        let answer = answer?;

        stats.dp_cells = gf.dp_cells();
        stats.entries_recomputed = gf.entries_recomputed();
        stats.rules_compressed = gf.rules_compressed();
        if let Some(t) = tracer {
            // Same synthetic back-to-back phase layout as the PT-k scan;
            // the finisher's time rides under the DP stage (it is the
            // semantics' "evaluation" phase).
            let mut at = query_begin;
            let phases = [
                (
                    Stage::Retrieval,
                    retrieval_clock.nanos(),
                    Payload::Retrieval {
                        tuples: stats.scanned as u64,
                    },
                ),
                (
                    Stage::Dp,
                    dp_clock.nanos() + finish_clock.nanos(),
                    Payload::Dp {
                        cells: stats.dp_cells,
                        entries: stats.entries_recomputed,
                    },
                ),
            ];
            for (stage, nanos, payload) in phases {
                t.span_at(stage, at, at + nanos, payload);
                at += nanos;
            }
            t.end(
                Stage::Query,
                Payload::Scan {
                    scanned: stats.scanned as u64,
                    evaluated: stats.evaluated as u64,
                    pruned_membership: 0,
                    pruned_rule: 0,
                    answers: answer.answer_count() as u64,
                },
            );
        }
        retrieval_clock.flush(recorder, "engine.phase.retrieval");
        dp_clock.flush(recorder, "engine.phase.dp");
        finish_clock.flush(recorder, "engine.phase.bound");
        stats.record_to(recorder);
        recorder.add(counters::GF_ROWS_INCREMENTAL, gf.rows_incremental());
        recorder.add(counters::GF_ROWS_REFOLDED, gf.rows_refolded());
        recorder.add(counters::ANSWERS, answer.answer_count() as u64);
        Ok(answer)
    }

    /// The partitioned deep-scan path of [`PtkExecutor::execute_snapshot`].
    fn run_partitioned(
        &self,
        layout: &ScanLayout,
        tasks: &[SegmentTask],
        pool: &ThreadPool,
    ) -> PtkResult {
        let recorder = self.recorder;
        let _query_span = ptk_obs::span(recorder, "engine.query");
        let tracer = self.tracer.filter(|t| t.enabled());
        let clocks_live = recorder.enabled() || tracer.is_some();
        let query_begin = tracer.map_or(0, |t| t.begin(Stage::Query));
        let plan = self.plan;
        let outcomes = pool.parallel_map_stealing(tasks, |_, task| {
            run_segment(plan, layout, task, clocks_live)
        });
        if let Some(t) = tracer {
            // Segment spans laid back to back from the query's start, each
            // sized by its measured DP time — the same synthetic layout the
            // sequential path uses for its phase spans.
            let mut at = query_begin;
            for (s, (task, out)) in tasks.iter().zip(&outcomes).enumerate() {
                let nanos = out.reorder_nanos + out.dp_nanos;
                t.span_at(
                    Stage::Segment,
                    at,
                    at + nanos,
                    Payload::Segment {
                        index: s as u64,
                        start_rank: task.start as u64,
                        tuples: (task.end - task.start) as u64,
                    },
                );
                at += nanos;
            }
        }
        let (result, reorder_nanos, dp_nanos) = stitch_segments(layout.len(), outcomes);
        if let Some(t) = tracer {
            for a in &result.answers {
                t.instant(Mark::Answer {
                    rank: a.rank as u64,
                });
            }
            t.end(
                Stage::Query,
                Payload::Scan {
                    scanned: result.stats.scanned as u64,
                    evaluated: result.stats.evaluated as u64,
                    pruned_membership: 0,
                    pruned_rule: 0,
                    answers: result.answers.len() as u64,
                },
            );
        }
        recorder.record_nanos("engine.phase.reorder", reorder_nanos);
        recorder.record_nanos("engine.phase.dp", dp_nanos);
        result.stats.record_to(recorder);
        recorder.add(counters::ANSWERS, result.answers.len() as u64);
        result
    }

    /// Evaluates a batch of independent plans against one shared ranked
    /// snapshot on `pool`'s deterministic work-stealing scheduler.
    ///
    /// The rule layout is compressed **once** against the shared source
    /// (`ScanLayout`): each query replays the materialized scan instead
    /// of forking its own cursor and re-deriving the layout tuple by
    /// tuple, and plans whose scan can be partitioned at rule-closed cuts
    /// (pruning off, scan deep enough) are split into per-segment DP tasks
    /// so one expensive query no longer serializes the batch. Every
    /// per-query answer — probabilities to the bit (`f64::to_bits`) and
    /// the full [`ExecStats`] — is identical to a sequential evaluation of
    /// that plan, at every pool width and under any steal interleaving:
    /// the replay is exact, segment boundaries are a pure function of the
    /// layout, and results are reassembled in plan order.
    ///
    /// A single-worker pool short-circuits to a plain sequential loop that
    /// never touches the pool; a lone pruning plan keeps its plain forked
    /// cursor (materializing the layout would scan the whole source even
    /// if the query stops early).
    pub fn execute_batch<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
    ) -> Vec<PtkResult> {
        Self::batch_inner(batch, source, pool, false).0
    }

    /// Like [`PtkExecutor::execute_batch`], but recording: the returned
    /// [`Snapshot`] merges every query's counters in plan order, so it is
    /// identical at every pool width — only the wall-clock timing section
    /// and the `scheduler` section (workers spawned, steals, segments;
    /// runtime facts by nature) vary, and [`Snapshot::to_json`] already
    /// excludes both from deterministic output.
    ///
    /// On a single-worker pool the batch runs as a plain sequential loop
    /// recording into **one** shared registry — no per-query registries,
    /// no merge, no pool; recording into one registry is bit-equal to the
    /// merge because counters are sums either way. The snapshot's
    /// `batch.workers_spawned` scheduler fact is then 0.
    pub fn execute_batch_recorded<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
    ) -> (Vec<PtkResult>, Snapshot) {
        let (results, snapshot) = Self::batch_inner(batch, source, pool, true);
        (
            results,
            snapshot.expect("recorded batches always build a snapshot"),
        )
    }

    /// The shared batch driver behind [`PtkExecutor::execute_batch`] and
    /// [`PtkExecutor::execute_batch_recorded`].
    fn batch_inner<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
        record: bool,
    ) -> (Vec<PtkResult>, Option<Snapshot>) {
        let plans = batch.plans();
        // A materialized layout pays for itself when several queries share
        // it or a single deep scan can be partitioned over it; a lone
        // pruning query keeps the plain fork.
        let layout_pays = plans.len() >= 2 || plans.iter().any(|p| !p.options().pruning);
        if pool.threads() <= 1 || !layout_pays {
            // Sequential short-circuit: no workers, no per-query
            // registries, no merge — one shared registry accumulates every
            // query, which is bit-equal to merging per-query snapshots.
            let shared = record.then(Metrics::new);
            let mut results = Vec::with_capacity(plans.len());
            for plan in plans {
                let mut cursor = source.fork();
                results.push(match &shared {
                    Some(metrics) => {
                        PtkExecutor::with_recorder(plan, metrics).execute(cursor.as_mut())
                    }
                    None => PtkExecutor::new(plan).execute(cursor.as_mut()),
                });
            }
            let snapshot = shared.map(|metrics| {
                let mut snap = metrics.snapshot();
                let inline = StealStats {
                    workers_spawned: 0,
                    tasks: plans.len() as u64,
                    stolen: 0,
                };
                publish_scheduler(&mut snap, inline, 0, 0);
                snap
            });
            return (results, snapshot);
        }

        let layout = ScanLayout::materialize(source);
        let mut tasks: Vec<BatchTask> = Vec::new();
        let mut segmented_queries = 0u64;
        for (p, plan) in plans.iter().enumerate() {
            let segs = if plan.options().pruning {
                Vec::new()
            } else {
                plan_segment_tasks(&layout, plan.k())
            };
            if segs.is_empty() {
                tasks.push(BatchTask::Whole { plan_idx: p });
            } else {
                segmented_queries += 1;
                tasks.extend(
                    segs.into_iter()
                        .map(|task| BatchTask::Segment { plan_idx: p, task }),
                );
            }
        }
        let segment_count = tasks
            .iter()
            .filter(|t| matches!(t, BatchTask::Segment { .. }))
            .count() as u64;

        let layout_ref = &layout;
        let (outs, steal) = pool.parallel_map_stealing_stats(&tasks, |_, task| match task {
            BatchTask::Whole { plan_idx } => {
                let plan = &plans[*plan_idx];
                let mut cursor = LayoutCursor::new(layout_ref);
                if record {
                    let metrics = Metrics::new();
                    let result = PtkExecutor::with_recorder(plan, &metrics).execute(&mut cursor);
                    TaskOut::Whole(result, Some(metrics.snapshot()))
                } else {
                    TaskOut::Whole(PtkExecutor::new(plan).execute(&mut cursor), None)
                }
            }
            BatchTask::Segment { plan_idx, task } => {
                TaskOut::Segment(run_segment(&plans[*plan_idx], layout_ref, task, record))
            }
        });

        // Reassemble per plan: whole results land directly, segment
        // outcomes stitch. Tasks were issued in plan order with segments
        // in rank order, so a linear walk preserves both.
        let mut whole: Vec<Option<(PtkResult, Option<Snapshot>)>> =
            (0..plans.len()).map(|_| None).collect();
        let mut seg_outs: Vec<Vec<SegmentOutcome>> = (0..plans.len()).map(|_| Vec::new()).collect();
        for (task, out) in tasks.iter().zip(outs) {
            match (task, out) {
                (BatchTask::Whole { plan_idx }, TaskOut::Whole(result, snap)) => {
                    whole[*plan_idx] = Some((result, snap));
                }
                (BatchTask::Segment { plan_idx, .. }, TaskOut::Segment(outcome)) => {
                    seg_outs[*plan_idx].push(outcome);
                }
                _ => unreachable!("task kinds round-trip through the pool"),
            }
        }
        let mut merged = record.then(Snapshot::default);
        let mut results = Vec::with_capacity(plans.len());
        for (p, slot) in whole.into_iter().enumerate() {
            let (result, snap) = match slot {
                Some(pair) => pair,
                None => {
                    let (result, reorder_nanos, dp_nanos) =
                        stitch_segments(layout.len(), std::mem::take(&mut seg_outs[p]));
                    let snap = record.then(|| {
                        // Mirror what a sequential recorded run of this
                        // plan would put in its registry: the exec
                        // counters, the answer count, and the phase
                        // timings (timings are non-deterministic and
                        // excluded from deterministic renderings anyway).
                        let metrics = Metrics::new();
                        result.stats.record_to(&metrics);
                        metrics.add(counters::ANSWERS, result.answers.len() as u64);
                        metrics.record_nanos("engine.phase.reorder", reorder_nanos);
                        metrics.record_nanos("engine.phase.dp", dp_nanos);
                        metrics.record_nanos("engine.query", reorder_nanos + dp_nanos);
                        metrics.snapshot()
                    });
                    (result, snap)
                }
            };
            if let (Some(m), Some(s)) = (merged.as_mut(), snap.as_ref()) {
                m.merge(s);
            }
            results.push(result);
        }
        if let Some(m) = merged.as_mut() {
            publish_scheduler(m, steal, segment_count, segmented_queries);
        }
        (results, merged)
    }

    /// Like [`PtkExecutor::execute_batch_recorded`], but additionally
    /// traces every query into its own bounded [`RingSink`] of `capacity`
    /// events, returning the merged event stream alongside the results and
    /// snapshot.
    ///
    /// Traced batches steal at **whole-query** granularity only (never
    /// segmenting): keeping each query's scan sequential keeps its event
    /// stream exactly the sequential one. Each query gets its own
    /// [`Tracer`] whose query id is the plan index and whose sequence
    /// numbers start at 0, and the per-query event runs are concatenated
    /// in plan order — so the *logical* event stream
    /// ([`ptk_obs::render_logical`]) is a pure function of the batch at
    /// every pool width. The worker id stamped on the events is the
    /// query's home lane (`i % workers`, a pure function of
    /// `(batch.len(), threads)`) regardless of which worker stole it, and
    /// all tracers share one epoch so the wall-clock export lines queries
    /// up on a common timeline.
    pub fn execute_batch_traced<S: SnapshotSource + ?Sized>(
        batch: &PtkBatch,
        source: &S,
        pool: &ThreadPool,
        capacity: usize,
    ) -> (Vec<PtkResult>, Snapshot, Vec<TraceEvent>) {
        let epoch = Instant::now();
        let plans = batch.plans();
        let lanes = pool.threads().min(plans.len()).max(1);
        let layout =
            (pool.threads() > 1 && plans.len() >= 2).then(|| ScanLayout::materialize(source));
        let (per_query, steal) = pool.parallel_map_stealing_stats(plans, |i, plan| {
            let sink = Arc::new(RingSink::new(capacity));
            let tracer = Tracer::with_epoch(
                Arc::clone(&sink) as SharedSink,
                i as u32,
                (i % lanes) as u32,
                epoch,
            );
            let metrics = Metrics::new();
            let executor = PtkExecutor::with_recorder(plan, &metrics).with_tracer(&tracer);
            let result = match layout.as_ref() {
                Some(l) => executor.execute(&mut LayoutCursor::new(l)),
                None => {
                    let mut cursor = source.fork();
                    executor.execute(cursor.as_mut())
                }
            };
            (result, metrics.snapshot(), sink.events())
        });
        let mut merged = Snapshot::default();
        let mut results = Vec::with_capacity(per_query.len());
        let mut events = Vec::new();
        for (result, snapshot, run) in per_query {
            merged.merge(&snapshot);
            events.extend(run);
            results.push(result);
        }
        publish_scheduler(&mut merged, steal, 0, 0);
        (results, merged, events)
    }
}

/// Policy floor: partitioned scans aim for segments of at least this many
/// ranks — below that the boundary bookkeeping outweighs the DP saved.
const MIN_SEGMENT_TUPLES: usize = 128;
/// Policy cap on segments per query, bounding boundary-row storage.
const MAX_SEGMENTS: usize = 16;

/// One segment of a partitioned scan: the rank range plus the seeded
/// compressor state at its opening boundary (see
/// [`Compressor::from_boundary`]).
#[derive(Debug)]
struct SegmentTask {
    start: usize,
    end: usize,
    /// Stable items available before `start - 1` — the length of the
    /// sequential entry list at the boundary.
    entry_count: usize,
    /// DP row of that entry list. Empty for the first segment.
    boundary_row: Vec<f64>,
}

/// What one segment run reports back for stitching.
#[derive(Debug)]
struct SegmentOutcome {
    /// `Pr^k` per rank of the segment (pruning is off, so every rank has
    /// an exact probability).
    probabilities: Vec<f64>,
    answers: Vec<AnswerTuple>,
    dp_cells: u64,
    entries_recomputed: u64,
    /// Rules first absorbed inside this segment. Rule closure makes rule
    /// sets disjoint across segments, so these sum to the sequential
    /// `rules_compressed`.
    new_rules: u64,
    reorder_nanos: u64,
    dp_nanos: u64,
}

/// One unit of batch work for the stealing scheduler.
#[derive(Debug)]
enum BatchTask {
    /// A plan that runs as one sequential scan over the shared layout.
    Whole { plan_idx: usize },
    /// One segment of a partitioned plan.
    Segment { plan_idx: usize, task: SegmentTask },
}

/// The result of one [`BatchTask`].
enum TaskOut {
    Whole(PtkResult, Option<Snapshot>),
    Segment(SegmentOutcome),
}

/// Publishes runtime scheduling facts into a snapshot's `scheduler`
/// section — diagnostics excluded from deterministic renderings, since
/// steal counts depend on OS timing.
fn publish_scheduler(
    snapshot: &mut Snapshot,
    steal: StealStats,
    segments: u64,
    segmented_queries: u64,
) {
    snapshot
        .scheduler
        .insert("batch.workers_spawned", steal.workers_spawned);
    snapshot.scheduler.insert("batch.tasks", steal.tasks);
    snapshot.scheduler.insert("batch.steals", steal.stolen);
    snapshot.scheduler.insert("batch.segments", segments);
    snapshot
        .scheduler
        .insert("batch.segmented_queries", segmented_queries);
}

/// Partitions `layout` at rule-closed cuts and seeds each non-initial
/// segment with its boundary DP row — one `O(n·k)` chain of exactly the
/// convolutions the sequential scan performs over the stable items in
/// availability order, so each seeded row is bit-identical to the
/// sequential row it stands in for. Returns an empty vector when the
/// layout is not worth partitioning.
fn plan_segment_tasks(layout: &ScanLayout, k: usize) -> Vec<SegmentTask> {
    let cuts = layout.plan_segments(MIN_SEGMENT_TUPLES, MAX_SEGMENTS);
    if cuts.is_empty() {
        return Vec::new();
    }
    let n = layout.len();
    let mut tasks = Vec::with_capacity(cuts.len() + 1);
    let mut row = dp::unit_row(k);
    let mut folded = 0usize;
    let mut start = 0usize;
    for &end in cuts.iter().chain(std::iter::once(&n)) {
        let (entry_count, boundary_row) = if start == 0 {
            (0, Vec::new())
        } else {
            let m = layout.stable_before(start - 1);
            while folded < m {
                let mass = match layout.stable[folded].seed {
                    StableSeed::Indep { prob, .. } => prob,
                    StableSeed::Rule { mass, .. } => mass,
                };
                dp::convolve_in_place(&mut row, mass);
                folded += 1;
            }
            (m, row.clone())
        };
        tasks.push(SegmentTask {
            start,
            end,
            entry_count,
            boundary_row,
        });
        start = end;
    }
    tasks
}

/// Runs one segment of a pruning-off scan over the shared layout,
/// replaying the recorded per-rank hints. Bit-identical to the sequential
/// scan over the same ranks by the [`Compressor::from_boundary`] argument.
fn run_segment(
    plan: &PtkPlan,
    layout: &ScanLayout,
    task: &SegmentTask,
    clocks_live: bool,
) -> SegmentOutcome {
    let threshold = plan.scan_threshold();
    let mut comp = if task.start == 0 {
        Compressor::new(plan.k(), plan.options().variant)
    } else {
        Compressor::from_boundary(
            plan.k(),
            plan.options().variant,
            &layout.stable[..layout.stable_before(task.start)],
            task.entry_count,
            &task.boundary_row,
        )
    };
    let seeded_rules = comp.rules_compressed();
    let mut reorder_clock = PhaseClock::enabled_if(clocks_live);
    let mut dp_clock = PhaseClock::enabled_if(clocks_live);
    let mut probabilities = Vec::with_capacity(task.end - task.start);
    let mut answers = Vec::new();
    for rank in task.start..task.end {
        let rec = &layout.tuples[rank];
        let tuple = rec.tuple;
        let desired = reorder_clock.time(|| comp.desired_list(tuple.rule));
        dp_clock.time(|| comp.recompute(desired));
        let prk = tuple.prob * dp::partial_sum(comp.last_row());
        probabilities.push(prk);
        if prk >= threshold {
            answers.push(AnswerTuple {
                rank,
                id: tuple.id,
                score: tuple.score,
                probability: prk,
            });
        }
        comp.absorb(AbsorbSpec {
            tag: rank,
            prob: tuple.prob,
            rule: tuple.rule,
            rule_len: rec.rule_len,
            next_member_rank: rec.next_member_rank,
        });
    }
    SegmentOutcome {
        probabilities,
        answers,
        dp_cells: comp.dp_cells(),
        entries_recomputed: comp.entries_recomputed(),
        new_rules: comp.rules_compressed() - seeded_rules,
        reorder_nanos: reorder_clock.nanos(),
        dp_nanos: dp_clock.nanos(),
    }
}

/// Concatenates segment outcomes into the sequential result shape,
/// returning the summed reorder / DP nanos alongside.
fn stitch_segments(n: usize, segments: Vec<SegmentOutcome>) -> (PtkResult, u64, u64) {
    let mut stats = ExecStats {
        scanned: n,
        evaluated: n,
        ..ExecStats::default()
    };
    let mut probabilities = Vec::with_capacity(n);
    let mut answers = Vec::new();
    let (mut reorder_nanos, mut dp_nanos) = (0u64, 0u64);
    for seg in segments {
        stats.dp_cells += seg.dp_cells;
        stats.entries_recomputed += seg.entries_recomputed;
        stats.rules_compressed += seg.new_rules;
        probabilities.extend(seg.probabilities.into_iter().map(Some));
        answers.extend(seg.answers);
        reorder_nanos += seg.reorder_nanos;
        dp_nanos += seg.dp_nanos;
    }
    (
        PtkResult {
            answers,
            probabilities,
            stats,
        },
        reorder_nanos,
        dp_nanos,
    )
}
