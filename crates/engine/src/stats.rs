//! Execution statistics reported by the exact engine.

/// Why a pruned scan stopped before exhausting the ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Theorem 5: the top-k probabilities of the answers found so far sum
    /// above `k − p`, so no further tuple can reach the threshold.
    TotalTopK,
    /// The subset-probability upper bound on any future tuple's top-k
    /// probability fell below the threshold (the concrete test behind
    /// line 6 of the paper's Figure 3).
    UpperBound,
}

/// Counters describing one exact-engine execution. These are the quantities
/// the paper's evaluation reports: scan depth (Figure 4) and the number of
/// subset-probability computations (Figure 5's proxy for runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples retrieved from the ranked list (the paper's *scan depth*).
    pub scanned: usize,
    /// Tuples whose exact top-k probability was computed.
    pub evaluated: usize,
    /// Tuples skipped by Theorem 3 (membership-probability pruning).
    pub pruned_membership: usize,
    /// Tuples skipped by Theorem 4 (same-rule pruning) or because their
    /// whole rule was pruned by Theorem 3(2).
    pub pruned_rule: usize,
    /// Subset-probability DP cells computed (`k` per recomputed entry).
    pub dp_cells: u64,
    /// Compressed-dominant-set entries whose DP row was recomputed — the
    /// cost of Eq. 5.
    pub entries_recomputed: u64,
    /// Why the scan stopped early, if it did.
    pub stop: Option<StopReason>,
}

impl ExecStats {
    /// Total tuples pruned without an exact evaluation.
    pub fn pruned(&self) -> usize {
        self.pruned_membership + self.pruned_rule
    }

    /// Whether the scan terminated before reading the whole ranked list.
    pub fn stopped_early(&self) -> bool {
        self.stop.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_sums_both_kinds() {
        let s = ExecStats {
            pruned_membership: 3,
            pruned_rule: 4,
            ..Default::default()
        };
        assert_eq!(s.pruned(), 7);
        assert!(!s.stopped_early());
    }

    #[test]
    fn stop_reason_reports_early_stop() {
        let s = ExecStats {
            stop: Some(StopReason::TotalTopK),
            ..Default::default()
        };
        assert!(s.stopped_early());
    }
}
