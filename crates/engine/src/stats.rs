//! Execution statistics reported by the exact engine.
//!
//! [`ExecStats`] is kept as a plain per-query struct (cheap to bump in the
//! scan loop, `Copy`, easy to assert on), but it is also a *view over the
//! ptk-obs registry*: [`ExecStats::record_to`] publishes every counter
//! under the names in [`counters`], and [`ExecStats::from_snapshot`]
//! reconstructs the struct from a [`Snapshot`](ptk_obs::Snapshot) — the
//! oracle tests assert the two directions agree.

use ptk_obs::{Recorder, Snapshot};

/// Metric names under which the engines record into a
/// [`Recorder`] (see `DESIGN.md` §8).
pub mod counters {
    /// Tuples retrieved from the ranked list (scan depth).
    pub const SCANNED: &str = "engine.scanned";
    /// Tuples whose exact top-k probability was computed.
    pub const EVALUATED: &str = "engine.evaluated";
    /// Tuples skipped by Theorem 3 (membership pruning).
    pub const PRUNED_MEMBERSHIP: &str = "engine.pruned_membership";
    /// Membership prunes decided per tuple, after its decode
    /// (attribution split of [`PRUNED_MEMBERSHIP`]).
    pub const PRUNED_MEMBERSHIP_TUPLE: &str = "engine.pruned_membership.tuple";
    /// Membership prunes decided per block by the block-level skip,
    /// without decoding the tuple (attribution split of
    /// [`PRUNED_MEMBERSHIP`]).
    pub const PRUNED_MEMBERSHIP_BLOCK: &str = "engine.pruned_membership.block";
    /// Tuples skipped by Theorem 4 / Theorem 3(2) (rule pruning).
    pub const PRUNED_RULE: &str = "engine.pruned_rule";
    /// Rule prunes where Theorem 3(2) failed the whole rule at first
    /// encounter (attribution split of [`PRUNED_RULE`]).
    pub const PRUNED_RULE_WHOLE: &str = "engine.pruned_rule.whole";
    /// Rule prunes where Theorem 4 failed the tuple against a failed
    /// sibling of its rule (attribution split of [`PRUNED_RULE`]).
    pub const PRUNED_RULE_MEMBER: &str = "engine.pruned_rule.member";
    /// Subset-probability DP cells computed.
    pub const DP_CELLS: &str = "engine.dp_cells";
    /// Compressed-dominant-set entries recomputed.
    pub const ENTRIES_RECOMPUTED: &str = "engine.entries_recomputed";
    /// Distinct rules compressed into rule-tuples during the scan.
    pub const RULES_COMPRESSED: &str = "engine.rules_compressed";
    /// Tuples in the answer set.
    pub const ANSWERS: &str = "engine.answers";
    /// Generating-function coefficient rows served through the O(k)
    /// incremental convolve/deconvolve recurrence (non-PT-k scans).
    pub const GF_ROWS_INCREMENTAL: &str = "engine.gf.rows_incremental";
    /// Generating-function rows (or pool rebuilds) that fell back to the
    /// exact prefix-shared refold because the inversion could not certify
    /// its accuracy.
    pub const GF_ROWS_REFOLDED: &str = "engine.gf.rows_refolded";
    /// 1 when the scan stopped early via Theorem 5.
    pub const STOP_TOTAL_TOPK: &str = "engine.stop.total_topk";
    /// 1 when the scan stopped early via the upper-bound test.
    pub const STOP_UPPER_BOUND: &str = "engine.stop.upper_bound";
}

/// Why a pruned scan stopped before exhausting the ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Theorem 5: the top-k probabilities of the answers found so far sum
    /// above `k − p`, so no further tuple can reach the threshold.
    TotalTopK,
    /// The subset-probability upper bound on any future tuple's top-k
    /// probability fell below the threshold (the concrete test behind
    /// line 6 of the paper's Figure 3).
    UpperBound,
}

/// Counters describing one exact-engine execution. These are the quantities
/// the paper's evaluation reports: scan depth (Figure 4) and the number of
/// subset-probability computations (Figure 5's proxy for runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples retrieved from the ranked list (the paper's *scan depth*).
    pub scanned: usize,
    /// Tuples whose exact top-k probability was computed.
    pub evaluated: usize,
    /// Tuples skipped by Theorem 3 (membership-probability pruning).
    pub pruned_membership: usize,
    /// How many of [`ExecStats::pruned_membership`] were decided at block
    /// grain by the block-level skip (PR 9), without decoding the tuple.
    /// The remainder (`pruned_membership − pruned_membership_block`) were
    /// decided per tuple, so the attribution sums to the total by
    /// construction.
    pub pruned_membership_block: usize,
    /// Tuples skipped by Theorem 4 (same-rule pruning) or because their
    /// whole rule was pruned by Theorem 3(2).
    pub pruned_rule: usize,
    /// How many of [`ExecStats::pruned_rule`] fired because Theorem 3(2)
    /// failed the whole rule at first encounter; the remainder
    /// (`pruned_rule − pruned_rule_whole`) are Theorem 4 rule-member
    /// prunes, so the attribution sums to the total by construction.
    pub pruned_rule_whole: usize,
    /// Subset-probability DP cells computed (`k` per recomputed entry).
    pub dp_cells: u64,
    /// Compressed-dominant-set entries whose DP row was recomputed — the
    /// cost of Eq. 5.
    pub entries_recomputed: u64,
    /// Distinct multi-tuple rules compressed into rule-tuples (Corollary 2's
    /// dominant-set compression).
    pub rules_compressed: u64,
    /// Why the scan stopped early, if it did.
    pub stop: Option<StopReason>,
}

impl ExecStats {
    /// Total tuples pruned without an exact evaluation.
    pub fn pruned(&self) -> usize {
        self.pruned_membership + self.pruned_rule
    }

    /// Membership prunes decided per tuple (the complement of the
    /// block-grain split; the two sum to
    /// [`ExecStats::pruned_membership`]).
    pub fn pruned_membership_tuple(&self) -> usize {
        self.pruned_membership - self.pruned_membership_block
    }

    /// Theorem 4 rule-member prunes (the complement of the whole-rule
    /// split; the two sum to [`ExecStats::pruned_rule`]).
    pub fn pruned_rule_member(&self) -> usize {
        self.pruned_rule - self.pruned_rule_whole
    }

    /// Whether the scan terminated before reading the whole ranked list.
    pub fn stopped_early(&self) -> bool {
        self.stop.is_some()
    }

    /// Publishes every counter into `recorder` under the [`counters`]
    /// names. Called once per query by the engines, so hot loops only ever
    /// bump the plain struct.
    pub fn record_to(&self, recorder: &dyn Recorder) {
        recorder.add(counters::SCANNED, self.scanned as u64);
        recorder.add(counters::EVALUATED, self.evaluated as u64);
        recorder.add(counters::PRUNED_MEMBERSHIP, self.pruned_membership as u64);
        recorder.add(
            counters::PRUNED_MEMBERSHIP_TUPLE,
            self.pruned_membership_tuple() as u64,
        );
        recorder.add(
            counters::PRUNED_MEMBERSHIP_BLOCK,
            self.pruned_membership_block as u64,
        );
        recorder.add(counters::PRUNED_RULE, self.pruned_rule as u64);
        recorder.add(counters::PRUNED_RULE_WHOLE, self.pruned_rule_whole as u64);
        recorder.add(
            counters::PRUNED_RULE_MEMBER,
            self.pruned_rule_member() as u64,
        );
        recorder.add(counters::DP_CELLS, self.dp_cells);
        recorder.add(counters::ENTRIES_RECOMPUTED, self.entries_recomputed);
        recorder.add(counters::RULES_COMPRESSED, self.rules_compressed);
        match self.stop {
            Some(StopReason::TotalTopK) => recorder.add(counters::STOP_TOTAL_TOPK, 1),
            Some(StopReason::UpperBound) => recorder.add(counters::STOP_UPPER_BOUND, 1),
            None => {}
        }
    }

    /// Reconstructs the stats of a *single recorded query* from a registry
    /// snapshot — the inverse of [`ExecStats::record_to`] as long as the
    /// registry saw exactly one query (counters are cumulative).
    pub fn from_snapshot(snapshot: &Snapshot) -> ExecStats {
        let stop = if snapshot.counter(counters::STOP_TOTAL_TOPK) > 0 {
            Some(StopReason::TotalTopK)
        } else if snapshot.counter(counters::STOP_UPPER_BOUND) > 0 {
            Some(StopReason::UpperBound)
        } else {
            None
        };
        ExecStats {
            scanned: snapshot.counter(counters::SCANNED) as usize,
            evaluated: snapshot.counter(counters::EVALUATED) as usize,
            pruned_membership: snapshot.counter(counters::PRUNED_MEMBERSHIP) as usize,
            pruned_membership_block: snapshot.counter(counters::PRUNED_MEMBERSHIP_BLOCK) as usize,
            pruned_rule: snapshot.counter(counters::PRUNED_RULE) as usize,
            pruned_rule_whole: snapshot.counter(counters::PRUNED_RULE_WHOLE) as usize,
            dp_cells: snapshot.counter(counters::DP_CELLS),
            entries_recomputed: snapshot.counter(counters::ENTRIES_RECOMPUTED),
            rules_compressed: snapshot.counter(counters::RULES_COMPRESSED),
            stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_sums_both_kinds() {
        let s = ExecStats {
            pruned_membership: 3,
            pruned_rule: 4,
            ..Default::default()
        };
        assert_eq!(s.pruned(), 7);
        assert!(!s.stopped_early());
    }

    #[test]
    fn attribution_splits_sum_to_the_totals_by_construction() {
        let s = ExecStats {
            pruned_membership: 5,
            pruned_membership_block: 2,
            pruned_rule: 7,
            pruned_rule_whole: 3,
            ..Default::default()
        };
        assert_eq!(
            s.pruned_membership_tuple() + s.pruned_membership_block,
            s.pruned_membership
        );
        assert_eq!(s.pruned_rule_whole + s.pruned_rule_member(), s.pruned_rule);
        assert_eq!(s.pruned_membership_tuple(), 3);
        assert_eq!(s.pruned_rule_member(), 4);
    }

    #[test]
    fn stop_reason_reports_early_stop() {
        let s = ExecStats {
            stop: Some(StopReason::TotalTopK),
            ..Default::default()
        };
        assert!(s.stopped_early());
    }

    #[test]
    fn record_to_round_trips_through_snapshot() {
        for stop in [
            None,
            Some(StopReason::TotalTopK),
            Some(StopReason::UpperBound),
        ] {
            let stats = ExecStats {
                scanned: 10,
                evaluated: 6,
                pruned_membership: 3,
                pruned_membership_block: 2,
                pruned_rule: 1,
                pruned_rule_whole: 1,
                dp_cells: 42,
                entries_recomputed: 21,
                rules_compressed: 5,
                stop,
            };
            let metrics = ptk_obs::Metrics::new();
            stats.record_to(&metrics);
            assert_eq!(ExecStats::from_snapshot(&metrics.snapshot()), stats);
        }
    }
}
