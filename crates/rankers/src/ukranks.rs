//! U-KRanks: the most probable tuple at each rank.

use ptk_core::RankedView;
use ptk_engine::{position_probabilities, SharingVariant};

/// One rank of a U-KRanks answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UkRanksEntry {
    /// The rank, 1-based (`1..=k`).
    pub rank: usize,
    /// The ranked position of the winning tuple.
    pub position: usize,
    /// `Pr(t ranked exactly `rank`)` for that tuple.
    pub probability: f64,
}

/// Answers a U-KRanks query: for each rank `i ∈ 1..=k`, the tuple with the
/// highest probability of being ranked exactly `i`-th across possible
/// worlds. Ties are broken toward the higher-ranked (smaller) position.
///
/// Note that, as the paper's §6.1 discussion highlights, the same tuple may
/// win several ranks (R9 and R11 each occupy two positions in Table 5).
///
/// # Panics
/// Panics if `k == 0`.
pub fn ukranks(view: &RankedView, k: usize) -> Vec<UkRanksEntry> {
    let pr = position_probabilities(view, k, SharingVariant::Lazy);
    (0..k)
        .map(|j| {
            let mut best_pos = 0;
            let mut best_prob = f64::NEG_INFINITY;
            #[allow(clippy::needless_range_loop)] // position doubles as the answer value
            for pos in 0..view.len() {
                if pr[pos][j] > best_prob + 1e-15 {
                    best_pos = pos;
                    best_prob = pr[pos][j];
                }
            }
            UkRanksEntry {
                rank: j + 1,
                position: best_pos,
                probability: best_prob.max(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn panda_matches_section_1() {
        let ranks = ukranks(&panda(), 2);
        assert_eq!(ranks[0].rank, 1);
        assert_eq!(ranks[0].position, 2); // R5
        assert_eq!(ranks[1].position, 2); // R5 again
        assert!((ranks[0].probability - 0.336).abs() < 1e-12);
    }

    #[test]
    fn independent_chain() {
        // Tuples 0.9, 0.9: rank 1 goes to position 0 (0.9), rank 2 to
        // position 1 (0.9*0.9 = 0.81).
        let view = RankedView::from_ranked_probs(&[0.9, 0.9], &[]).unwrap();
        let ranks = ukranks(&view, 2);
        assert_eq!(ranks[0].position, 0);
        assert!((ranks[0].probability - 0.9).abs() < 1e-12);
        assert_eq!(ranks[1].position, 1);
        assert!((ranks[1].probability - 0.81).abs() < 1e-12);
    }

    #[test]
    fn empty_view_reports_zero() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let ranks = ukranks(&view, 3);
        assert_eq!(ranks.len(), 3);
        assert!(ranks.iter().all(|r| r.probability == 0.0));
    }
}
