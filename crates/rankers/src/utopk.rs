//! U-TopK: the most probable top-k vector, by best-first state search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ptk_core::RankedView;

/// Options for the U-TopK search.
#[derive(Debug, Clone, Copy)]
pub struct UTopKOptions {
    /// Hard cap on states popped from the frontier; exceeding it aborts with
    /// [`SearchExhausted`]. The search is exponential in the worst case
    /// (this is inherent to the query semantics — see the paper's Challenge
    /// 2 discussion), though it behaves well on realistic inputs.
    pub max_states: u64,
}

impl Default for UTopKOptions {
    fn default() -> Self {
        UTopKOptions {
            max_states: 20_000_000,
        }
    }
}

/// The search gave up after popping `max_states` states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchExhausted {
    /// The configured cap that was hit.
    pub max_states: u64,
}

impl std::fmt::Display for SearchExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U-TopK search exceeded {} states", self.max_states)
    }
}

impl std::error::Error for SearchExhausted {}

/// A U-TopK answer: the most probable top-k vector.
#[derive(Debug, Clone, PartialEq)]
pub struct UTopKAnswer {
    /// Ranked positions of the vector, in ranking order. Shorter than `k`
    /// only when no possible world holds `k` tuples.
    pub vector: Vec<usize>,
    /// The probability that this vector is exactly the top-k list.
    pub probability: f64,
    /// States popped from the frontier (search effort).
    pub states_explored: u64,
}

/// A partial state of the best-first search: the scan has consumed positions
/// `0..depth`, the tuples in `chosen` are present, every other consumed
/// tuple is absent. `prob` is the exact probability of that event, which is
/// an upper bound on the probability of any completed vector extending the
/// state (future factors are at most 1).
#[derive(Debug, Clone)]
struct State {
    depth: usize,
    prob: f64,
    chosen: Vec<usize>,
    /// Rules (by dense index) that already contributed a chosen member.
    rules_chosen: Vec<u32>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Highest probability pops first; among equals, the
        // lexicographically smaller vector pops first (deterministic
        // tie-breaking, matching the enumeration oracle).
        self.prob
            .total_cmp(&other.prob)
            .then_with(|| other.chosen.cmp(&self.chosen))
            .then_with(|| other.depth.cmp(&self.depth))
    }
}

/// Answers a U-TopK query on a ranked view: the length-`k` vector of tuples
/// with the highest probability of being exactly the top-k list of a
/// possible world (Soliman et al., ICDE'07).
///
/// # Errors
/// Returns [`SearchExhausted`] if the frontier exceeds
/// [`UTopKOptions::max_states`].
///
/// # Panics
/// Panics if `k == 0`.
pub fn utopk(
    view: &RankedView,
    k: usize,
    options: &UTopKOptions,
) -> Result<UTopKAnswer, SearchExhausted> {
    assert!(k > 0, "top-k queries require k >= 1");
    let n = view.len();

    // Per-position: the mass of same-rule members ranked strictly above.
    let mut mass_before = vec![0.0f64; n];
    for rule in view.rules() {
        let mut acc = 0.0;
        for &m in &rule.members {
            mass_before[m] = acc;
            acc += view.prob(m);
        }
    }

    // Seed a lower bound with the greedy completion (include every tuple
    // the rules allow until the vector is full). Any state whose upper
    // bound falls below a known complete vector's probability can never be
    // optimal, so it is not even pushed — this keeps the frontier small on
    // high-probability inputs.
    let lower_bound = {
        let mut prob = 1.0f64;
        let mut chosen = 0usize;
        let mut taken: Vec<u32> = Vec::new();
        #[allow(clippy::needless_range_loop)] // pos indexes both view and mass_before
        for pos in 0..n {
            if chosen == k {
                break;
            }
            let p = view.prob(pos);
            match view.rule_at(pos) {
                None => {
                    prob *= p;
                    chosen += 1;
                }
                Some(h) => {
                    let idx = h.index() as u32;
                    if taken.contains(&idx) {
                        continue; // forced exclusion, factor 1
                    }
                    let remaining = 1.0 - mass_before[pos];
                    if remaining > 1e-12 {
                        prob *= (p / remaining).min(1.0);
                        chosen += 1;
                        taken.push(idx);
                    }
                    // remaining ~ 0: the tuple cannot exist; skip (factor 1).
                }
            }
            if prob == 0.0 {
                break;
            }
        }
        prob
    };

    let push_state = |heap: &mut BinaryHeap<State>, s: State| {
        if s.prob >= lower_bound {
            heap.push(s);
        }
    };
    let mut heap = BinaryHeap::new();
    heap.push(State {
        depth: 0,
        prob: 1.0,
        chosen: Vec::new(),
        rules_chosen: Vec::new(),
    });
    let mut popped: u64 = 0;

    while let Some(state) = heap.pop() {
        popped += 1;
        if popped > options.max_states {
            return Err(SearchExhausted {
                max_states: options.max_states,
            });
        }
        if state.chosen.len() == k || state.depth == n {
            return Ok(UTopKAnswer {
                vector: state.chosen,
                probability: state.prob,
                states_explored: popped,
            });
        }
        let pos = state.depth;
        let p = view.prob(pos);
        match view.rule_at(pos) {
            None => {
                // Include.
                if p > 0.0 {
                    let mut chosen = state.chosen.clone();
                    chosen.push(pos);
                    push_state(
                        &mut heap,
                        State {
                            depth: pos + 1,
                            prob: state.prob * p,
                            chosen,
                            rules_chosen: state.rules_chosen.clone(),
                        },
                    );
                }
                // Exclude.
                if p < 1.0 {
                    push_state(
                        &mut heap,
                        State {
                            depth: pos + 1,
                            prob: state.prob * (1.0 - p),
                            chosen: state.chosen,
                            rules_chosen: state.rules_chosen,
                        },
                    );
                }
            }
            Some(h) => {
                let idx = h.index() as u32;
                let taken = state.rules_chosen.contains(&idx);
                if taken {
                    // Another member of the rule is already in the vector:
                    // this tuple is absent with conditional probability 1.
                    push_state(
                        &mut heap,
                        State {
                            depth: pos + 1,
                            prob: state.prob,
                            chosen: state.chosen,
                            rules_chosen: state.rules_chosen,
                        },
                    );
                } else {
                    // No member chosen yet: condition on "no member of the
                    // rule ranked above this one appeared".
                    let remaining = 1.0 - mass_before[pos];
                    debug_assert!(remaining > -1e-12);
                    let include = if remaining > 1e-12 {
                        p / remaining
                    } else {
                        0.0
                    };
                    if include > 0.0 {
                        let mut chosen = state.chosen.clone();
                        chosen.push(pos);
                        let mut rules_chosen = state.rules_chosen.clone();
                        rules_chosen.push(idx);
                        push_state(
                            &mut heap,
                            State {
                                depth: pos + 1,
                                prob: state.prob * include.min(1.0),
                                chosen,
                                rules_chosen,
                            },
                        );
                    }
                    let exclude = if remaining > 1e-12 {
                        ((remaining - p) / remaining).max(0.0)
                    } else {
                        1.0
                    };
                    if exclude > 0.0 {
                        push_state(
                            &mut heap,
                            State {
                                depth: pos + 1,
                                prob: state.prob * exclude,
                                chosen: state.chosen,
                                rules_chosen: state.rules_chosen,
                            },
                        );
                    }
                }
            }
        }
    }
    // Heap drained without a complete state: only possible on an empty view
    // (the initial state is complete there) or if every branch had
    // probability zero — return the empty vector.
    Ok(UTopKAnswer {
        vector: Vec::new(),
        probability: 0.0,
        states_explored: popped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn panda_matches_section_1() {
        let answer = utopk(&panda(), 2, &UTopKOptions::default()).unwrap();
        assert_eq!(answer.vector, vec![2, 3]); // <R5, R3>
        assert!((answer.probability - 0.28).abs() < 1e-12);
        assert!(answer.states_explored > 0);
    }

    #[test]
    fn certain_prefix_wins() {
        let view = RankedView::from_ranked_probs(&[1.0, 1.0, 0.5], &[]).unwrap();
        let answer = utopk(&view, 2, &UTopKOptions::default()).unwrap();
        assert_eq!(answer.vector, vec![0, 1]);
        assert!((answer.probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_vector_when_worlds_are_small() {
        // One uncertain tuple, k=3: the most probable top-3 "vector" is
        // either [0] (p=0.7) or [] (p=0.3).
        let view = RankedView::from_ranked_probs(&[0.7], &[]).unwrap();
        let answer = utopk(&view, 3, &UTopKOptions::default()).unwrap();
        assert_eq!(answer.vector, vec![0]);
        assert!((answer.probability - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_view() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let answer = utopk(&view, 2, &UTopKOptions::default()).unwrap();
        assert!(answer.vector.is_empty());
        assert!((answer.probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_cap_aborts() {
        let probs = vec![0.5; 40];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let err = utopk(&view, 10, &UTopKOptions { max_states: 5 }).unwrap_err();
        assert_eq!(err.max_states, 5);
        assert!(err.to_string().contains("5 states"));
    }

    #[test]
    fn rule_members_never_pair_in_vector() {
        let view = RankedView::from_ranked_probs(&[0.45, 0.45, 0.3, 0.3], &[vec![0, 1]]).unwrap();
        let answer = utopk(&view, 2, &UTopKOptions::default()).unwrap();
        let both = answer.vector.contains(&0) && answer.vector.contains(&1);
        assert!(
            !both,
            "exclusive tuples both in vector: {:?}",
            answer.vector
        );
    }
}
