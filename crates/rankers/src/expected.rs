//! Expected-rank semantics (Cormode, Li and Yi, ICDE 2009) as a third
//! baseline next to U-TopK and U-KRanks.
//!
//! The *expected rank* of a tuple is the expectation, over possible worlds,
//! of its rank — where a tuple absent from a world is ranked at the bottom,
//! position `|W|` (0-based ranks). Under the x-relation model this has a
//! closed form requiring no dynamic program at all:
//!
//! * if `t` (at ranked position `i`) appears, its rank is the number of
//!   higher-ranked present tuples: `Σ_{j<i} Pr(t_j | t present)` — the
//!   conditional drops `t`'s own rule-mates, which cannot co-occur;
//! * if `t` is absent, its rank is `|W|` of the remaining table:
//!   `Σ_{j≠i} Pr(t_j | t absent)` — rule-mates of `t` get the conditional
//!   probability `Pr(t_j) / (1 − Pr(t))`.
//!
//! Both are plain sums, so the whole table is processed in `O(n)` after the
//! ranked view is built. This module exists because any credible release of
//! an uncertain-ranking library is expected to offer all three classic
//! semantics; it also makes a useful contrast in the examples (expected
//! ranks can disagree sharply with top-k probabilities).

use ptk_core::RankedView;

/// The expected rank of one tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedRankEntry {
    /// The tuple's ranked position in the view.
    pub position: usize,
    /// Its expected rank (0-based; lower is better).
    pub expected_rank: f64,
}

/// Computes the expected rank of every tuple, indexed by ranked position.
pub fn expected_ranks(view: &RankedView) -> Vec<f64> {
    let n = view.len();
    // Total present mass and per-rule mass, for the conditional sums.
    let total_mass: f64 = view.tuples().iter().map(|t| t.prob).sum();
    // prefix_mass[i] = Σ_{j<i} Pr(t_j).
    let mut prefix = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for (i, t) in view.tuples().iter().enumerate() {
        let p = t.prob;
        // Rule-mates of t: mass above i, and mass anywhere (excluding t).
        let (mates_above, mates_total) = match t.rule {
            None => (0.0, 0.0),
            Some(h) => {
                let rule = view.rule(h);
                let above: f64 = rule
                    .members
                    .iter()
                    .take_while(|&&m| m < i)
                    .map(|&m| view.prob(m))
                    .sum();
                (above, rule.mass - p)
            }
        };
        // Present: higher-ranked co-occurring mass (rule-mates excluded —
        // they cannot appear with t).
        let rank_if_present = prefix - mates_above;
        // Absent: every other tuple with its conditional probability. For
        // non-mates the conditional equals the marginal; each rule-mate u
        // has Pr(u | t absent) = Pr(u) / (1 − Pr(t)).
        let rank_if_absent = if p >= 1.0 {
            0.0 // never absent; the term is weighted by zero anyway
        } else {
            (total_mass - p - mates_total) + mates_total / (1.0 - p)
        };
        out.push(p * rank_if_present + (1.0 - p) * rank_if_absent);
        prefix += p;
    }
    out
}

/// The k tuples with the smallest expected rank, as
/// [`ExpectedRankEntry`] values sorted by expected rank ascending (ties by
/// ranked position).
pub fn expected_rank_topk(view: &RankedView, k: usize) -> Vec<ExpectedRankEntry> {
    let er = expected_ranks(view);
    let mut entries: Vec<ExpectedRankEntry> = er
        .iter()
        .enumerate()
        .map(|(position, &expected_rank)| ExpectedRankEntry {
            position,
            expected_rank,
        })
        .collect();
    entries.sort_by(|a, b| {
        a.expected_rank
            .total_cmp(&b.expected_rank)
            .then_with(|| a.position.cmp(&b.position))
    });
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    /// Oracle: expected rank by enumeration.
    fn oracle(view: &RankedView) -> Vec<f64> {
        let worlds = ptk_worlds::enumerate(view).unwrap();
        let mut er = vec![0.0; view.len()];
        for w in &worlds {
            #[allow(clippy::needless_range_loop)] // pos indexes view and er together
            for pos in 0..view.len() {
                let rank = match w.members.iter().position(|&m| m == pos) {
                    Some(r) => r,
                    None => w.len(),
                };
                er[pos] += w.prob * rank as f64;
            }
        }
        er
    }

    #[test]
    fn matches_enumeration_on_panda() {
        let view = panda();
        let fast = expected_ranks(&view);
        let slow = oracle(&view);
        for (pos, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!((a - b).abs() < 1e-12, "pos {pos}: {a} vs {b}");
        }
    }

    #[test]
    fn matches_enumeration_on_random_views() {
        use ptk_core::rng::{RngExt, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..40 {
            let n = rng.random_range(1..=10usize);
            let probs: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..=1.0f64)).collect();
            let mut groups = Vec::new();
            if n >= 3 && probs[0] + probs[2] <= 1.0 {
                groups.push(vec![0, 2]);
            }
            let view = RankedView::from_ranked_probs(&probs, &groups).unwrap();
            let fast = expected_ranks(&view);
            let slow = oracle(&view);
            for (pos, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-9, "trial {trial} pos {pos}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn certain_tuples_rank_by_preceding_mass() {
        // All certain: expected rank is just the position.
        let view = RankedView::from_ranked_probs(&[1.0, 1.0, 1.0], &[]).unwrap();
        let er = expected_ranks(&view);
        assert_eq!(er, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn topk_sorts_and_truncates() {
        let view = panda();
        let top = expected_rank_topk(&view, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].expected_rank <= top[1].expected_rank);
        assert!(top[1].expected_rank <= top[2].expected_rank);
        // R4 (certain, position 4) has a low expected rank despite its
        // middling score — the classic expected-rank-vs-PT-k divergence.
        assert!(top.iter().any(|e| e.position == 4));
    }

    #[test]
    fn empty_view() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        assert!(expected_ranks(&view).is_empty());
        assert!(expected_rank_topk(&view, 3).is_empty());
    }
}
