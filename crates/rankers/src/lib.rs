//! # `ptk-rankers` — rank-sensitive uncertain top-k baselines
//!
//! The two query semantics of Soliman, Ilyas and Chang (ICDE'07) that the
//! paper compares PT-k queries against in §6.1:
//!
//! * **U-TopK** ([`utopk`]) — the length-k vector of tuples with the highest
//!   probability of being *exactly* the top-k list of a possible world.
//!   Implemented as a best-first search over partial states (scan prefix +
//!   chosen tuples), with per-rule conditional probability factors; the
//!   state probability is an admissible upper bound on any completion, so
//!   the first complete state popped is optimal.
//! * **U-KRanks** ([`ukranks`]) — for each rank `i ∈ 1..=k`, the tuple with
//!   the highest probability of being ranked exactly `i`-th. The position
//!   probabilities `Pr(t, j) = Pr(t) · Pr(T(t), j−1)` (Eq. 3) fall straight
//!   out of `ptk-engine`'s subset-probability scan.
//!
//! A third classic semantics, *expected ranks* (Cormode, Li and Yi, ICDE
//! 2009), is provided as well ([`expected_ranks`]) — it post-dates the
//! paper but belongs in any uncertain-ranking library and makes an
//! instructive contrast in the examples.
//!
//! ```
//! use ptk_core::RankedView;
//! use ptk_rankers::{utopk, ukranks, UTopKOptions};
//!
//! // The paper's running example (Table 1), ranked by duration.
//! let view = RankedView::from_ranked_probs(
//!     &[0.3, 0.4, 0.8, 0.5, 1.0, 0.2],
//!     &[vec![1, 3], vec![2, 5]],
//! ).unwrap();
//!
//! // §1: U-TopK returns <R5, R3> (positions 2 and 3) with probability 0.28.
//! let answer = utopk(&view, 2, &UTopKOptions::default()).unwrap();
//! assert_eq!(answer.vector, vec![2, 3]);
//! assert!((answer.probability - 0.28).abs() < 1e-12);
//!
//! // §1: U-KRanks returns R5 at both rank 1 and rank 2.
//! let ranks = ukranks(&view, 2);
//! assert_eq!(ranks[0].position, 2);
//! assert_eq!(ranks[1].position, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod expected;
mod ukranks;
mod utopk;

pub use expected::{expected_rank_topk, expected_ranks, ExpectedRankEntry};
pub use ukranks::{ukranks, UkRanksEntry};
pub use utopk::{utopk, SearchExhausted, UTopKAnswer, UTopKOptions};
