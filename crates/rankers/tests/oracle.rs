//! Randomized oracle tests: U-TopK and U-KRanks must agree with naive
//! possible-world enumeration on small random tables.

use ptk_core::rng::{RngExt, SeedableRng, StdRng};

use ptk_core::RankedView;
use ptk_rankers::{ukranks, utopk, UTopKOptions};
use ptk_worlds::naive;

fn random_view(rng: &mut StdRng, max_n: usize) -> RankedView {
    let n = rng.random_range(1..=max_n);
    let probs: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..=1.0f64)).collect();
    let mut positions: Vec<usize> = (0..n).collect();
    for i in (1..positions.len()).rev() {
        let j = rng.random_range(0..=i);
        positions.swap(i, j);
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cursor = 0;
    while cursor + 1 < positions.len() {
        if rng.random_range(0.0..1.0f64) < 0.5 {
            let size = rng.random_range(2..=4usize).min(positions.len() - cursor);
            let group: Vec<usize> = positions[cursor..cursor + size].to_vec();
            let mass: f64 = group.iter().map(|&p| probs[p]).sum();
            if mass <= 1.0 {
                groups.push(group);
                cursor += size;
                continue;
            }
        }
        cursor += 1;
    }
    RankedView::from_ranked_probs(&probs, &groups).unwrap()
}

#[test]
fn utopk_matches_enumeration() {
    let mut rng = StdRng::seed_from_u64(0xabc1);
    for trial in 0..80 {
        let view = random_view(&mut rng, 10);
        let k = rng.random_range(1..=4usize);
        let (oracle_vec, oracle_prob) = naive::utopk(&view, k).unwrap();
        let answer = utopk(&view, k, &UTopKOptions::default()).unwrap();
        // Probabilities must match exactly (ties may pick a different but
        // equally probable vector).
        assert!(
            (answer.probability - oracle_prob).abs() < 1e-10,
            "trial {trial} k={k}: engine {} vs oracle {} ({:?} vs {:?})",
            answer.probability,
            oracle_prob,
            answer.vector,
            oracle_vec
        );
        // And the engine's vector must really have the probability it
        // claims, per enumeration.
        let direct: f64 = ptk_worlds::enumerate(&view)
            .unwrap()
            .iter()
            .filter(|w| w.top_k(k) == answer.vector.as_slice())
            .map(|w| w.prob)
            .sum();
        assert!(
            (direct - answer.probability).abs() < 1e-10,
            "trial {trial}: claimed {} but enumeration gives {direct}",
            answer.probability
        );
    }
}

#[test]
fn ukranks_matches_enumeration() {
    let mut rng = StdRng::seed_from_u64(0xabc2);
    for trial in 0..80 {
        let view = random_view(&mut rng, 10);
        let k = rng.random_range(1..=4usize);
        let oracle = naive::ukranks(&view, k).unwrap();
        let answer = ukranks(&view, k);
        assert_eq!(answer.len(), k);
        for j in 0..k {
            assert!(
                (answer[j].probability - oracle[j].1).abs() < 1e-10,
                "trial {trial} rank {j}: {} vs {}",
                answer[j].probability,
                oracle[j].1
            );
            assert_eq!(
                answer[j].position, oracle[j].0,
                "trial {trial} rank {j} winner mismatch"
            );
            assert_eq!(answer[j].rank, j + 1);
        }
    }
}
