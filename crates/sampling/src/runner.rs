//! Sampling runs: stopping criteria and estimate aggregation.

use ptk_core::rng::{derive_seed, RngExt, SeedableRng, StdRng};
use ptk_core::RankedView;
use ptk_obs::{Mark, Noop, Payload, Recorder, Stage, Tracer};
use ptk_par::ThreadPool;

use crate::bounds::chernoff_sample_size;
use crate::counters;
use crate::sampler::WorldSampler;

/// When to stop drawing sample units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCriterion {
    /// Draw exactly this many units.
    FixedUnits(u64),
    /// Draw the Chernoff–Hoeffding bound of Theorem 6 for the given relative
    /// error `epsilon` and failure probability `delta`.
    Chernoff {
        /// Relative error bound `ε`.
        epsilon: f64,
        /// Failure probability `δ`.
        delta: f64,
    },
    /// Progressive sampling (improvement 2 of §5): stop once no tuple's
    /// estimate changed by more than `phi` over the last `d` units. A hard
    /// cap `max_units` bounds the worst case.
    ///
    /// Stability is checked at the end of every full window of `d` units,
    /// and once more over the final *partial* window when `max_units` is
    /// not a multiple of `d` (the run always stops at the cap; the partial
    /// check only decides whether it stopped *stable*, reported via
    /// [`SampleEstimate::stop`]). When `d >= max_units` no window ever
    /// completes before the cap, so the criterion degenerates to
    /// [`StopCriterion::FixedUnits`]`(max_units)` and the outcome is
    /// [`StopOutcome::ProgressiveBudget`] — pick `d` well below
    /// `max_units` for the stability check to have any effect.
    Progressive {
        /// Window length `d` in sample units.
        d: u64,
        /// Stability tolerance `φ` on each estimate.
        phi: f64,
        /// Hard cap on the number of units.
        max_units: u64,
    },
}

/// Why a sampling run stopped (recorded under the matching
/// `sampling.stop.*` counter in [`crate::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopOutcome {
    /// The requested fixed unit count was drawn.
    FixedUnits,
    /// The Chernoff–Hoeffding bound of Theorem 6 was drawn.
    ChernoffBound,
    /// Progressive stopping found the estimates stable within `phi` — over
    /// a full window of `d` units, or over the final partial window at the
    /// cap.
    ProgressiveStable,
    /// The progressive cap `max_units` was reached with the estimates
    /// still moving (or with no window to check, when `d >= max_units`).
    ProgressiveBudget,
}

impl StopOutcome {
    fn counter(self) -> &'static str {
        match self {
            StopOutcome::FixedUnits => counters::STOP_FIXED,
            StopOutcome::ChernoffBound => counters::STOP_CHERNOFF,
            StopOutcome::ProgressiveStable => counters::STOP_STABLE,
            StopOutcome::ProgressiveBudget => counters::STOP_BUDGET,
        }
    }
}

/// The stop outcome of a run that always draws its full budget (fixed,
/// Chernoff, or a progressive criterion degraded to its cap).
fn budget_outcome(stop: &StopCriterion) -> StopOutcome {
    match stop {
        StopCriterion::FixedUnits(_) => StopOutcome::FixedUnits,
        StopCriterion::Chernoff { .. } => StopOutcome::ChernoffBound,
        StopCriterion::Progressive { .. } => StopOutcome::ProgressiveBudget,
    }
}

/// Configuration for a sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingOptions {
    /// Stopping criterion.
    pub stop: StopCriterion,
    /// RNG seed — runs are deterministic given the seed.
    pub seed: u64,
}

impl Default for SamplingOptions {
    fn default() -> Self {
        SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 500,
                phi: 0.001,
                max_units: 200_000,
            },
            seed: 0,
        }
    }
}

/// The outcome of a sampling run.
#[derive(Debug, Clone)]
pub struct SampleEstimate {
    /// `probabilities[pos]` estimates `Pr^k` of the tuple at ranked
    /// position `pos` (the sample mean of its top-k indicator).
    pub probabilities: Vec<f64>,
    /// Units actually drawn.
    pub units: u64,
    /// Average ranked positions scanned per unit (the paper's *sample
    /// length*, Figure 4).
    pub average_sample_length: f64,
    /// Why the run stopped.
    pub stop: StopOutcome,
}

impl SampleEstimate {
    /// The positions whose estimated top-k probability reaches `threshold`,
    /// in ranking order.
    pub fn answers(&self, threshold: f64) -> Vec<usize> {
        (0..self.probabilities.len())
            .filter(|&pos| self.probabilities[pos] >= threshold)
            .collect()
    }
}

/// Estimates the top-k probability of every tuple by sampling.
pub fn sample_topk(view: &RankedView, k: usize, options: &SamplingOptions) -> SampleEstimate {
    sample_topk_recorded(view, k, options, &Noop)
}

/// Like [`sample_topk`], recording run metrics into `recorder`: unit and
/// position counts ([`counters::UNITS`], [`counters::POSITIONS`]), the
/// per-unit scan-length histogram ([`counters::UNIT_LEN`]), and a `1` on
/// the `sampling.stop.*` counter matching the [`StopOutcome`].
pub fn sample_topk_recorded(
    view: &RankedView,
    k: usize,
    options: &SamplingOptions,
    recorder: &dyn Recorder,
) -> SampleEstimate {
    sample_topk_traced(view, k, options, recorder, &Tracer::disabled())
}

/// Like [`sample_topk_recorded`], additionally emitting structured trace
/// events: the whole run becomes a [`Stage::Sampling`] span carrying the
/// drawn-unit and scanned-position totals, and every progressive-stop
/// stability check emits a [`Mark::SampleCheckpoint`] instant with its
/// decision — so a trace shows *when* the estimates settled, not just that
/// they did. A disabled tracer reduces to [`sample_topk_recorded`] exactly.
pub fn sample_topk_traced(
    view: &RankedView,
    k: usize,
    options: &SamplingOptions,
    recorder: &dyn Recorder,
    tracer: &Tracer,
) -> SampleEstimate {
    let _ = tracer.begin(Stage::Sampling);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut sampler = WorldSampler::new(view, k);
    let mut counts = vec![0u64; view.len()];
    let mut unit = Vec::with_capacity(k);

    let budget = match options.stop {
        StopCriterion::FixedUnits(n) => n,
        StopCriterion::Chernoff { epsilon, delta } => chernoff_sample_size(epsilon, delta),
        StopCriterion::Progressive { max_units, .. } => max_units,
    };
    let progressive = match options.stop {
        StopCriterion::Progressive { d, phi, .. } => Some((d.max(1), phi)),
        _ => None,
    };
    // Progressive state: estimates snapshotted `d` units ago.
    let mut snapshot: Vec<f64> = Vec::new();
    let mut snapshot_at: u64 = 0;
    let mut stable_stop = false;

    let stable_within = |current: &[f64], snapshot: &[f64], phi: f64| {
        current
            .iter()
            .zip(snapshot.iter())
            .all(|(a, b)| (a - b).abs() <= phi)
    };

    let mut drawn: u64 = 0;
    while drawn < budget {
        let visited = sampler.draw_unit(&mut rng, &mut unit);
        recorder.observe(counters::UNIT_LEN, visited as f64);
        drawn += 1;
        for &pos in &unit {
            counts[pos] += 1;
        }
        if let Some((d, phi)) = progressive {
            if drawn == snapshot_at + d {
                let current: Vec<f64> = counts.iter().map(|&c| c as f64 / drawn as f64).collect();
                let stable = !snapshot.is_empty() && stable_within(&current, &snapshot, phi);
                tracer.instant(Mark::SampleCheckpoint { drawn, stable });
                if stable {
                    stable_stop = true;
                    break;
                }
                snapshot = current;
                snapshot_at = drawn;
            }
        }
    }

    // Check the final *partial* window: when `max_units` is not a multiple
    // of `d` the loop above exits at the cap mid-window, and without this
    // check the trailing units would never be compared against the last
    // snapshot — the run would silently report an unstable stop even when
    // the estimates had settled.
    if let Some((_, phi)) = progressive {
        if !stable_stop && !snapshot.is_empty() && drawn > snapshot_at {
            let current: Vec<f64> = counts.iter().map(|&c| c as f64 / drawn as f64).collect();
            stable_stop = stable_within(&current, &snapshot, phi);
            tracer.instant(Mark::SampleCheckpoint {
                drawn,
                stable: stable_stop,
            });
        }
    }

    let stop = match options.stop {
        StopCriterion::Progressive { .. } if stable_stop => StopOutcome::ProgressiveStable,
        ref other => budget_outcome(other),
    };
    recorder.add(counters::UNITS, drawn);
    recorder.add(counters::POSITIONS, sampler.positions_scanned());
    recorder.add(stop.counter(), 1);
    tracer.end(
        Stage::Sampling,
        Payload::Sampling {
            units: drawn,
            positions: sampler.positions_scanned(),
        },
    );

    SampleEstimate {
        probabilities: counts
            .iter()
            .map(|&c| c as f64 / drawn.max(1) as f64)
            .collect(),
        units: drawn,
        average_sample_length: sampler.average_sample_length(),
        stop,
    }
}

/// Estimates the top-k probability of every tuple by **antithetic**
/// sampling: units are drawn in pairs, the second unit of each pair reusing
/// the complements `1 − u` of the first unit's uniform variates.
///
/// Each variate is still marginally `U(0, 1)`, so the estimator stays
/// unbiased; within a pair the top-k indicators are negatively correlated,
/// which reduces the estimator's variance (strongly so for tuples whose
/// inclusion is driven by a single variate). When the second unit consumes
/// more variates than the first recorded (units stop early at `k`
/// inclusions, so lengths differ), the excess variates are drawn fresh.
///
/// Only fixed-unit and Chernoff stopping make sense pair-wise, so a
/// [`StopCriterion::Progressive`] criterion is treated as its `max_units`
/// cap.
pub fn sample_topk_antithetic(
    view: &RankedView,
    k: usize,
    options: &SamplingOptions,
) -> SampleEstimate {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut sampler = WorldSampler::new(view, k);
    let mut counts = vec![0u64; view.len()];
    let mut unit = Vec::with_capacity(k);
    let budget = match options.stop {
        StopCriterion::FixedUnits(n) => n,
        StopCriterion::Chernoff { epsilon, delta } => chernoff_sample_size(epsilon, delta),
        StopCriterion::Progressive { max_units, .. } => max_units,
    };
    let mut recorded: Vec<f64> = Vec::new();
    let mut drawn: u64 = 0;
    while drawn < budget {
        if drawn.is_multiple_of(2) {
            recorded.clear();
            sampler.draw_unit_from(
                || {
                    let u: f64 = rng.random();
                    recorded.push(u);
                    u
                },
                &mut unit,
            );
        } else {
            let mut next = 0usize;
            sampler.draw_unit_from(
                || {
                    let u = if next < recorded.len() {
                        1.0 - recorded[next]
                    } else {
                        rng.random()
                    };
                    next += 1;
                    u
                },
                &mut unit,
            );
        }
        drawn += 1;
        for &pos in &unit {
            counts[pos] += 1;
        }
    }
    SampleEstimate {
        probabilities: counts
            .iter()
            .map(|&c| c as f64 / drawn.max(1) as f64)
            .collect(),
        units: drawn,
        average_sample_length: sampler.average_sample_length(),
        stop: budget_outcome(&options.stop),
    }
}

/// Estimates the top-k probability of every tuple by sampling across
/// `threads` workers of a [`ThreadPool`], each drawing an equal share of
/// the unit budget from its own RNG stream. Stream `t` is seeded with
/// [`derive_seed`]`(options.seed, t)` — SplitMix64-derived child seeds, so
/// every per-thread state passes through a full avalanche mix (an
/// xor-multiply of the seed can land adjacent streams close together for
/// adversarial seeds). With `threads == 1` the single worker uses
/// `options.seed` directly, making the run identical to [`sample_topk`]
/// under budget-only stopping. The merged estimate is unbiased and
/// deterministic for a fixed `(seed, threads)` pair; different thread
/// counts legitimately produce different (equally valid) estimates.
///
/// Progressive stopping needs a global view of the estimates, so a
/// [`StopCriterion::Progressive`] criterion is treated as its `max_units`
/// cap, as in [`sample_topk_antithetic`].
///
/// # Panics
/// Panics if `threads == 0`.
pub fn sample_topk_parallel(
    view: &RankedView,
    k: usize,
    options: &SamplingOptions,
    threads: usize,
) -> SampleEstimate {
    let pool = ThreadPool::new(threads);
    let budget = match options.stop {
        StopCriterion::FixedUnits(n) => n,
        StopCriterion::Chernoff { epsilon, delta } => chernoff_sample_size(epsilon, delta),
        StopCriterion::Progressive { max_units, .. } => max_units,
    };
    let per_thread = budget / threads as u64;
    let remainder = budget % threads as u64;
    // One share per worker: (quota, stream seed). A single worker keeps
    // the caller's seed verbatim so the run degenerates to the sequential
    // sampler's stream.
    let shares: Vec<(u64, u64)> = (0..threads as u64)
        .map(|t| {
            let quota = per_thread + u64::from(t < remainder);
            let seed = if threads == 1 {
                options.seed
            } else {
                derive_seed(options.seed, t)
            };
            (quota, seed)
        })
        .collect();

    let results = pool.parallel_map(&shares, |_, &(quota, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = WorldSampler::new(view, k);
        let mut counts = vec![0u64; view.len()];
        let mut unit = Vec::with_capacity(k);
        let mut scanned = 0u64;
        for _ in 0..quota {
            scanned += sampler.draw_unit(&mut rng, &mut unit) as u64;
            for &pos in &unit {
                counts[pos] += 1;
            }
        }
        (counts, quota, scanned)
    });

    let mut counts = vec![0u64; view.len()];
    let mut drawn = 0u64;
    let mut scanned = 0u64;
    for (c, units, s) in results {
        for (total, x) in counts.iter_mut().zip(c) {
            *total += x;
        }
        drawn += units;
        scanned += s;
    }
    SampleEstimate {
        probabilities: counts
            .iter()
            .map(|&c| c as f64 / drawn.max(1) as f64)
            .collect(),
        units: drawn,
        average_sample_length: if drawn == 0 {
            0.0
        } else {
            scanned as f64 / drawn as f64
        },
        stop: budget_outcome(&options.stop),
    }
}

/// Answers a PT-k query approximately by sampling: the tuples whose
/// *estimated* top-k probability reaches `threshold`.
pub fn sample_ptk(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &SamplingOptions,
) -> (Vec<usize>, SampleEstimate) {
    sample_ptk_recorded(view, k, threshold, options, &Noop)
}

/// Like [`sample_ptk`], recording run metrics into `recorder` (see
/// [`sample_topk_recorded`]).
pub fn sample_ptk_recorded(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &SamplingOptions,
    recorder: &dyn Recorder,
) -> (Vec<usize>, SampleEstimate) {
    let estimate = sample_topk_recorded(view, k, options, recorder);
    (estimate.answers(threshold), estimate)
}

/// Answers a PT-k query approximately over the parallel estimate: the
/// tuples whose *estimated* top-k probability (from
/// [`sample_topk_parallel`]) reaches `threshold` — API parity with
/// [`sample_ptk`] for callers that size their run with a thread budget.
/// With `threads == 1` the answers equal [`sample_ptk`]'s under
/// budget-only stopping (same RNG stream, see [`sample_topk_parallel`]).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn sample_ptk_parallel(
    view: &RankedView,
    k: usize,
    threshold: f64,
    options: &SamplingOptions,
    threads: usize,
) -> (Vec<usize>, SampleEstimate) {
    let estimate = sample_topk_parallel(view, k, options, threads);
    (estimate.answers(threshold), estimate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn fixed_units_estimates_match_table_3() {
        let estimate = sample_topk(
            &panda(),
            2,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(50_000),
                seed: 11,
            },
        );
        let exact = [0.3, 0.4, 0.704, 0.38, 0.202, 0.014];
        for (pos, e) in exact.iter().enumerate() {
            assert!(
                (estimate.probabilities[pos] - e).abs() < 0.01,
                "pos {pos}: {} vs {e}",
                estimate.probabilities[pos]
            );
        }
        assert_eq!(estimate.units, 50_000);
    }

    #[test]
    fn ptk_answers_recovered() {
        let (answers, _) = sample_ptk(
            &panda(),
            2,
            0.35,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(30_000),
                seed: 5,
            },
        );
        assert_eq!(answers, vec![1, 2, 3]); // Example 1's answer set
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_balanced_span() {
        use ptk_obs::{
            render_logical, to_chrome_json, validate_chrome_trace, RingSink, SharedSink,
        };
        use std::sync::Arc;
        let options = SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 100,
                phi: 0.01,
                max_units: 10_000,
            },
            seed: 2,
        };
        let view = RankedView::from_ranked_probs(&[1.0, 1.0, 1.0], &[]).unwrap();
        let sink = Arc::new(RingSink::new(1024));
        let tracer = Tracer::new(Arc::clone(&sink) as SharedSink, 0, 0);
        let traced = sample_topk_traced(&view, 2, &options, &Noop, &tracer);
        let plain = sample_topk(&view, 2, &options);
        assert_eq!(traced.units, plain.units, "tracing never changes the run");
        assert_eq!(traced.probabilities, plain.probabilities);
        let events = sink.events();
        let check = validate_chrome_trace(&to_chrome_json(&events)).unwrap();
        assert_eq!(check.begins, 1, "one sampling span");
        assert_eq!(check.ends, 1);
        assert!(check.instants >= 1, "at least one progressive checkpoint");
        let text = render_logical(&events);
        assert!(text.contains("B sampling"), "{text}");
        assert!(text.contains("i sample-checkpoint"), "{text}");
        assert!(text.contains("stable=true"), "{text}");
        assert!(text.contains(&format!("units={}", traced.units)), "{text}");
    }

    #[test]
    fn chernoff_stop_draws_the_bound() {
        let options = SamplingOptions {
            stop: StopCriterion::Chernoff {
                epsilon: 0.2,
                delta: 0.1,
            },
            seed: 1,
        };
        let estimate = sample_topk(&panda(), 2, &options);
        assert_eq!(estimate.units, chernoff_sample_size(0.2, 0.1));
    }

    #[test]
    fn progressive_stops_before_cap_on_stable_input() {
        // A certain tuple first: estimates stabilize almost immediately.
        let view = RankedView::from_ranked_probs(&[1.0, 1.0, 1.0], &[]).unwrap();
        let options = SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 100,
                phi: 0.01,
                max_units: 100_000,
            },
            seed: 2,
        };
        let estimate = sample_topk(&view, 2, &options);
        assert!(estimate.units < 100_000, "drew {}", estimate.units);
        assert_eq!(estimate.stop, StopOutcome::ProgressiveStable);
        assert_eq!(estimate.probabilities[0], 1.0);
        assert_eq!(estimate.probabilities[2], 0.0);
    }

    #[test]
    fn progressive_respects_hard_cap() {
        let options = SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 10,
                phi: 0.0,
                max_units: 57,
            },
            seed: 3,
        };
        let estimate = sample_topk(&panda(), 2, &options);
        assert!(estimate.units <= 57);
    }

    #[test]
    fn progressive_with_window_beyond_cap_degrades_to_fixed_units() {
        // d >= max_units: no full window ever completes, so the run must
        // draw exactly max_units and report an (unchecked) budget stop.
        let options = SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 1_000,
                phi: 1.0, // even a sure-stable tolerance never gets checked
                max_units: 57,
            },
            seed: 3,
        };
        let estimate = sample_topk(&panda(), 2, &options);
        assert_eq!(estimate.units, 57);
        assert_eq!(estimate.stop, StopOutcome::ProgressiveBudget);
    }

    #[test]
    fn progressive_checks_the_final_partial_window() {
        // Deterministic input (all probabilities 1): estimates are constant,
        // so any window — including the final partial one — is stable. With
        // d = 64 and max_units = 100, the first snapshot lands at 64 and the
        // next full boundary (128) is past the cap; only the partial window
        // 64..100 can notice stability.
        let view = RankedView::from_ranked_probs(&[1.0, 1.0, 1.0], &[]).unwrap();
        let options = SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 64,
                phi: 0.01,
                max_units: 100,
            },
            seed: 7,
        };
        let estimate = sample_topk(&view, 2, &options);
        assert_eq!(estimate.units, 100);
        assert_eq!(estimate.stop, StopOutcome::ProgressiveStable);
    }

    #[test]
    fn recorded_run_snapshots_units_and_stop() {
        let metrics = ptk_obs::Metrics::new();
        let estimate = sample_topk_recorded(
            &panda(),
            2,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(200),
                seed: 11,
            },
            &metrics,
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(crate::counters::UNITS), 200);
        assert_eq!(snap.counter(crate::counters::STOP_FIXED), 1);
        assert_eq!(snap.counter(crate::counters::STOP_STABLE), 0);
        let lens = snap
            .histogram(crate::counters::UNIT_LEN)
            .expect("unit lengths observed");
        assert_eq!(lens.count, 200);
        assert!(
            (lens.sum - estimate.average_sample_length * 200.0).abs() < 1e-9,
            "histogram sum {} vs mean {}",
            lens.sum,
            estimate.average_sample_length
        );
        assert_eq!(
            snap.counter(crate::counters::POSITIONS),
            lens.sum as u64,
            "positions counter tracks the histogram mass"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let options = SamplingOptions {
            stop: StopCriterion::FixedUnits(500),
            seed: 99,
        };
        let a = sample_topk(&panda(), 2, &options);
        let b = sample_topk(&panda(), 2, &options);
        assert_eq!(a.probabilities, b.probabilities);
        assert_eq!(a.average_sample_length, b.average_sample_length);
    }

    #[test]
    fn parallel_is_unbiased_and_deterministic() {
        let options = SamplingOptions {
            stop: StopCriterion::FixedUnits(40_000),
            seed: 31,
        };
        let a = sample_topk_parallel(&panda(), 2, &options, 4);
        let b = sample_topk_parallel(&panda(), 2, &options, 4);
        assert_eq!(a.probabilities, b.probabilities);
        assert_eq!(a.units, 40_000);
        let exact = [0.3, 0.4, 0.704, 0.38, 0.202, 0.014];
        for (pos, e) in exact.iter().enumerate() {
            assert!(
                (a.probabilities[pos] - e).abs() < 0.01,
                "pos {pos}: {} vs {e}",
                a.probabilities[pos]
            );
        }
        // Uneven splits cover the remainder path.
        let c = sample_topk_parallel(
            &panda(),
            2,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(101),
                seed: 31,
            },
            3,
        );
        assert_eq!(c.units, 101);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_rejects_zero_threads() {
        let _ = sample_topk_parallel(&panda(), 2, &SamplingOptions::default(), 0);
    }

    #[test]
    fn parallel_single_thread_matches_sequential_exactly() {
        // threads == 1 keeps the caller's seed verbatim, so the run is the
        // sequential sampler's stream bit for bit (budget-only stopping).
        let options = SamplingOptions {
            stop: StopCriterion::FixedUnits(2_000),
            seed: 77,
        };
        let seq = sample_topk(&panda(), 2, &options);
        let par = sample_topk_parallel(&panda(), 2, &options, 1);
        assert_eq!(seq.probabilities, par.probabilities);
        assert_eq!(seq.units, par.units);
        assert_eq!(
            seq.average_sample_length.to_bits(),
            par.average_sample_length.to_bits()
        );
    }

    #[test]
    fn parallel_streams_are_pinned_to_derived_child_seeds() {
        // The (seed, threads) reproducibility contract: worker t draws the
        // stream of derive_seed(seed, t). Re-running each worker's share as
        // a sequential run seeded with the derived child must reproduce the
        // merged counts exactly.
        let seed = 31;
        let threads = 3;
        let budget = 1_001u64; // uneven split: quotas 334, 334, 333
        let par = sample_topk_parallel(
            &panda(),
            2,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(budget),
                seed,
            },
            threads,
        );
        let mut merged = [0.0f64; 6];
        let mut drawn = 0u64;
        for t in 0..threads as u64 {
            let quota = budget / threads as u64 + u64::from(t < budget % threads as u64);
            let child = sample_topk(
                &panda(),
                2,
                &SamplingOptions {
                    stop: StopCriterion::FixedUnits(quota),
                    seed: derive_seed(seed, t),
                },
            );
            for (total, p) in merged.iter_mut().zip(&child.probabilities) {
                *total += p * quota as f64;
            }
            drawn += quota;
        }
        assert_eq!(drawn, par.units);
        for (pos, total) in merged.iter().enumerate() {
            // counts are integers, so the reconstruction is exact up to
            // one rounding of the division.
            let reconstructed = (total / drawn as f64 * drawn as f64).round();
            let observed = (par.probabilities[pos] * drawn as f64).round();
            assert_eq!(reconstructed, observed, "pos {pos}");
        }
    }

    #[test]
    fn ptk_parallel_matches_sequential_at_one_thread() {
        let options = SamplingOptions {
            stop: StopCriterion::FixedUnits(30_000),
            seed: 5,
        };
        let (seq_answers, seq_est) = sample_ptk(&panda(), 2, 0.35, &options);
        let (par_answers, par_est) = sample_ptk_parallel(&panda(), 2, 0.35, &options, 1);
        assert_eq!(seq_answers, par_answers);
        assert_eq!(seq_est.probabilities, par_est.probabilities);
        assert_eq!(par_answers, vec![1, 2, 3]); // Example 1's answer set
    }

    #[test]
    fn ptk_parallel_recovers_answers_multithreaded() {
        let (answers, estimate) = sample_ptk_parallel(
            &panda(),
            2,
            0.35,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(40_000),
                seed: 5,
            },
            4,
        );
        assert_eq!(answers, vec![1, 2, 3]);
        assert_eq!(estimate.units, 40_000);
    }

    #[test]
    fn antithetic_is_unbiased() {
        let estimate = sample_topk_antithetic(
            &panda(),
            2,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(50_000),
                seed: 21,
            },
        );
        let exact = [0.3, 0.4, 0.704, 0.38, 0.202, 0.014];
        for (pos, e) in exact.iter().enumerate() {
            assert!(
                (estimate.probabilities[pos] - e).abs() < 0.01,
                "pos {pos}: {} vs {e}",
                estimate.probabilities[pos]
            );
        }
    }

    #[test]
    fn antithetic_reduces_variance_on_single_variate_events() {
        // One tuple with p = 0.5, k = 1: each pair contributes exactly one
        // inclusion (u < 0.5 xor 1-u < 0.5), so the antithetic estimator is
        // exactly 0.5 with zero variance; the independent estimator is not.
        let view = RankedView::from_ranked_probs(&[0.5], &[]).unwrap();
        let spread = |f: &dyn Fn(u64) -> f64| -> f64 {
            let xs: Vec<f64> = (0..20).map(f).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let anti = spread(&|seed| {
            sample_topk_antithetic(
                &view,
                1,
                &SamplingOptions {
                    stop: StopCriterion::FixedUnits(1_000),
                    seed,
                },
            )
            .probabilities[0]
        });
        let indep = spread(&|seed| {
            sample_topk(
                &view,
                1,
                &SamplingOptions {
                    stop: StopCriterion::FixedUnits(1_000),
                    seed,
                },
            )
            .probabilities[0]
        });
        assert!(anti < 1e-12, "antithetic variance should vanish: {anti}");
        assert!(
            indep > anti,
            "independent variance {indep} should exceed {anti}"
        );
    }

    #[test]
    fn answers_threshold_filter() {
        let estimate = SampleEstimate {
            probabilities: vec![0.9, 0.2, 0.5],
            units: 10,
            average_sample_length: 3.0,
            stop: StopOutcome::FixedUnits,
        };
        assert_eq!(estimate.answers(0.5), vec![0, 2]);
        assert_eq!(estimate.answers(0.95), Vec::<usize>::new());
    }
}
