//! Possible-world sample-unit generation.

use ptk_core::rng::RngExt;
use ptk_core::RankedView;

/// Generates sample units (possible worlds truncated to their top-k) from a
/// ranked view, under the distribution induced by the membership
/// probabilities and generation rules (§5 of the paper).
///
/// The generator scans the ranked list from the top. The outcome of a
/// multi-tuple rule is drawn *lazily* at the first encounter of any of its
/// members — one member with its membership probability, or no member with
/// probability `1 − Pr(R)` — and remembered for the rest of the unit, which
/// is equivalent to the paper's description (pick a member inside the rule
/// with probability `Pr(t) / Pr(R)`, conditioned on the rule firing).
/// Generation of a unit stops as soon as `k` tuples have been included
/// (improvement 1 of §5): later tuples cannot affect the top-k.
#[derive(Debug)]
pub struct WorldSampler<'v> {
    view: &'v RankedView,
    k: usize,
    /// Lazily reset per-unit rule decisions: `(stamp, chosen position)`;
    /// a stale stamp means "undecided this unit".
    decisions: Vec<(u64, Option<usize>)>,
    stamp: u64,
    /// Total ranked positions visited across all units (for the paper's
    /// *sample length* statistic in Figure 4).
    scanned: u64,
    units: u64,
}

impl<'v> WorldSampler<'v> {
    /// Creates a sampler producing top-`k` sample units from `view`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(view: &'v RankedView, k: usize) -> WorldSampler<'v> {
        assert!(k > 0, "top-k queries require k >= 1");
        WorldSampler {
            view,
            k,
            decisions: vec![(0, None); view.rules().len()],
            stamp: 0,
            scanned: 0,
            units: 0,
        }
    }

    /// Draws one sample unit and appends the ranked positions of its top-k
    /// tuples to `out` (cleared first), in ranking order.
    ///
    /// Returns the number of ranked positions scanned to produce the unit.
    pub fn draw_unit<R: RngExt + ?Sized>(&mut self, rng: &mut R, out: &mut Vec<usize>) -> usize {
        self.draw_unit_from(|| rng.random(), out)
    }

    /// Like [`WorldSampler::draw_unit`], but takes its uniform variates from
    /// an arbitrary stream. Each call of `uniform` must return a `U(0, 1)`
    /// variate; the unit is unbiased as long as each variate is marginally
    /// uniform (the variates need not be independent of *other units'* —
    /// this is the hook for antithetic sampling).
    pub fn draw_unit_from(
        &mut self,
        mut uniform: impl FnMut() -> f64,
        out: &mut Vec<usize>,
    ) -> usize {
        out.clear();
        self.stamp += 1;
        self.units += 1;
        let mut visited = 0;
        for pos in 0..self.view.len() {
            visited += 1;
            let included = match self.view.rule_at(pos) {
                None => uniform() < self.view.prob(pos),
                Some(h) => {
                    let idx = h.index();
                    if self.decisions[idx].0 != self.stamp {
                        // Decide the whole rule now: pick a member with its
                        // membership probability, or none.
                        let u: f64 = uniform();
                        let mut acc = 0.0;
                        let mut chosen = None;
                        for &m in &self.view.rules()[idx].members {
                            acc += self.view.prob(m);
                            if u < acc {
                                chosen = Some(m);
                                break;
                            }
                        }
                        self.decisions[idx] = (self.stamp, chosen);
                    }
                    self.decisions[idx].1 == Some(pos)
                }
            };
            if included {
                out.push(pos);
                if out.len() == self.k {
                    break;
                }
            }
        }
        self.scanned += visited as u64;
        visited
    }

    /// Average number of ranked positions scanned per unit so far — the
    /// paper's *sample length* (Figure 4).
    pub fn average_sample_length(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.scanned as f64 / self.units as f64
        }
    }

    /// Number of units drawn so far.
    pub fn units_drawn(&self) -> u64 {
        self.units
    }

    /// Total ranked positions visited across all units so far.
    pub fn positions_scanned(&self) -> u64 {
        self.scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptk_core::rng::{SeedableRng, StdRng};

    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn units_respect_rule_exclusivity() {
        let view = panda();
        let mut sampler = WorldSampler::new(&view, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let mut unit = Vec::new();
        for _ in 0..2000 {
            sampler.draw_unit(&mut rng, &mut unit);
            let r1 = unit.iter().filter(|&&p| p == 1 || p == 3).count();
            let r2 = unit.iter().filter(|&&p| p == 2 || p == 5).count();
            assert!(r1 <= 1, "rule 1 violated: {unit:?}");
            assert!(r2 <= 1, "rule 2 violated: {unit:?}");
            // The R5⊕R6 rule has mass 1: exactly one member must appear.
            assert_eq!(r2, 1, "certain rule must fire: {unit:?}");
            // Position 4 has probability 1.
            assert!(unit.contains(&4));
        }
    }

    #[test]
    fn marginal_frequencies_converge() {
        let view = panda();
        // k = view.len(): no early stop, so frequencies estimate membership.
        let mut sampler = WorldSampler::new(&view, 6);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u32; view.len()];
        let units = 60_000;
        let mut unit = Vec::new();
        for _ in 0..units {
            sampler.draw_unit(&mut rng, &mut unit);
            for &p in &unit {
                counts[p] += 1;
            }
        }
        for (pos, &count) in counts.iter().enumerate() {
            let freq = count as f64 / units as f64;
            assert!(
                (freq - view.prob(pos)).abs() < 0.01,
                "pos {pos}: {freq} vs {}",
                view.prob(pos)
            );
        }
    }

    #[test]
    fn early_stop_truncates_at_k() {
        let view = RankedView::from_ranked_probs(&[1.0, 1.0, 1.0, 1.0], &[]).unwrap();
        let mut sampler = WorldSampler::new(&view, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut unit = Vec::new();
        let visited = sampler.draw_unit(&mut rng, &mut unit);
        assert_eq!(unit, vec![0, 1]);
        assert_eq!(visited, 2);
        assert_eq!(sampler.average_sample_length(), 2.0);
        assert_eq!(sampler.units_drawn(), 1);
    }

    #[test]
    fn early_stop_does_not_bias_topk_estimates() {
        // Compare top-1 frequency of the first tuple with and without the
        // early stop (k=1 vs k=n); both must estimate Pr^1.
        let view = RankedView::from_ranked_probs(&[0.5, 0.9, 0.4], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let units = 40_000;
        let mut unit = Vec::new();

        let mut top1_counts = [0u32; 3];
        let mut sampler = WorldSampler::new(&view, 1);
        for _ in 0..units {
            sampler.draw_unit(&mut rng, &mut unit);
            if let Some(&p) = unit.first() {
                top1_counts[p] += 1;
            }
        }
        // Exact Pr^1: [0.5, 0.9*0.5, 0.4*0.5*0.1].
        let exact = [0.5, 0.45, 0.02];
        for pos in 0..3 {
            let freq = top1_counts[pos] as f64 / units as f64;
            assert!((freq - exact[pos]).abs() < 0.01, "pos {pos}: {freq}");
        }
        // Early stop shortens the scan: expected length well below 3.
        assert!(sampler.average_sample_length() < 2.1);
    }

    #[test]
    fn expected_sample_length_tracks_k_over_mu() {
        // §5: with independent tuples of mean probability μ, a unit needs
        // about k/μ scans.
        let probs = vec![0.5; 500];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let mut sampler = WorldSampler::new(&view, 10);
        let mut rng = StdRng::seed_from_u64(17);
        let mut unit = Vec::new();
        for _ in 0..3000 {
            sampler.draw_unit(&mut rng, &mut unit);
        }
        let len = sampler.average_sample_length();
        assert!(
            (len - 20.0).abs() < 1.5,
            "average length {len}, expected ~20"
        );
    }

    #[test]
    fn empty_view_units_are_empty() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let mut sampler = WorldSampler::new(&view, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut unit = vec![99; 1];
        let visited = sampler.draw_unit(&mut rng, &mut unit);
        assert!(unit.is_empty());
        assert_eq!(visited, 0);
    }
}
