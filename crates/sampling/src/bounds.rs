//! Sample-size bounds (Theorem 6 of the paper).

/// The Chernoff–Hoeffding sample size of Theorem 6: with at least
/// `3·ln(2/δ) / ε²` sample units, every tuple's estimated top-k probability
/// is within relative error `ε` of the truth with probability at least
/// `1 − δ`.
///
/// # Panics
/// Panics unless `0 < δ < 1` and `ε > 0`.
pub fn chernoff_sample_size(epsilon: f64, delta: f64) -> u64 {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0, 1), got {delta}"
    );
    let bound = 3.0 * (2.0 / delta).ln() / (epsilon * epsilon);
    bound.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_formula() {
        // 3 ln(2/0.05) / 0.1^2 = 300 ln 40 ≈ 1106.6.
        let n = chernoff_sample_size(0.1, 0.05);
        assert_eq!(n, (300.0 * 40.0f64.ln()).ceil() as u64);
        assert!((1106..=1107).contains(&n));
    }

    #[test]
    fn tighter_epsilon_needs_quadratically_more() {
        let loose = chernoff_sample_size(0.2, 0.05);
        let tight = chernoff_sample_size(0.1, 0.05);
        assert!(tight >= 4 * loose - 4);
    }

    #[test]
    fn smaller_delta_needs_more() {
        assert!(chernoff_sample_size(0.1, 0.01) > chernoff_sample_size(0.1, 0.1));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        chernoff_sample_size(0.0, 0.05);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        chernoff_sample_size(0.1, 1.0);
    }
}
