//! Deterministic sampler tests: feeding scripted uniform variates through
//! `draw_unit_from` pins down the generator's exact decision logic (which
//! variate decides what, and when the early stop kicks in).

use ptk_core::RankedView;
use ptk_sampling::WorldSampler;

fn unit_with(view: &RankedView, k: usize, script: &[f64]) -> (Vec<usize>, usize) {
    let mut sampler = WorldSampler::new(view, k);
    let mut it = script.iter().copied();
    let mut out = Vec::new();
    let visited = sampler.draw_unit_from(|| it.next().expect("script long enough"), &mut out);
    (out, visited)
}

#[test]
fn independent_tuples_consume_one_variate_each() {
    let view = RankedView::from_ranked_probs(&[0.5, 0.5, 0.5], &[]).unwrap();
    // u < p includes the tuple.
    let (unit, visited) = unit_with(&view, 3, &[0.4, 0.6, 0.4]);
    assert_eq!(unit, vec![0, 2]);
    assert_eq!(visited, 3);
    let (unit, _) = unit_with(&view, 3, &[0.9, 0.9, 0.9]);
    assert!(unit.is_empty());
}

#[test]
fn early_stop_skips_the_tail() {
    let view = RankedView::from_ranked_probs(&[0.5; 10], &[]).unwrap();
    // k = 2: two inclusions end the unit after two positions.
    let (unit, visited) = unit_with(&view, 2, &[0.1, 0.1]);
    assert_eq!(unit, vec![0, 1]);
    assert_eq!(visited, 2);
}

#[test]
fn rule_decision_is_drawn_once_at_first_member() {
    // Rule {0, 2} with probs 0.3 / 0.4: the first encounter draws one
    // uniform that decides the whole rule: u < 0.3 -> member 0;
    // 0.3 <= u < 0.7 -> member 2; u >= 0.7 -> none.
    let view = RankedView::from_ranked_probs(&[0.3, 0.5, 0.4], &[vec![0, 2]]).unwrap();

    // Script: rule-decision 0.1 (picks member 0), independent 0.9 (out).
    let (unit, _) = unit_with(&view, 3, &[0.1, 0.9]);
    assert_eq!(unit, vec![0]);

    // Rule decision 0.5 picks member 2; independent 0.1 includes tuple 1.
    let (unit, _) = unit_with(&view, 3, &[0.5, 0.1]);
    assert_eq!(unit, vec![1, 2]);

    // Rule decision 0.9 picks nobody.
    let (unit, _) = unit_with(&view, 3, &[0.9, 0.9]);
    assert!(unit.is_empty());
}

#[test]
fn scripted_units_expose_exact_variate_budget() {
    // One rule of three members plus two independents: a full unit needs
    // exactly 3 variates (1 rule decision + 2 independents).
    let view = RankedView::from_ranked_probs(&[0.2, 0.5, 0.3, 0.5, 0.3], &[vec![0, 2, 4]]).unwrap();
    let mut sampler = WorldSampler::new(&view, 5);
    let mut used = 0usize;
    let mut out = Vec::new();
    sampler.draw_unit_from(
        || {
            used += 1;
            0.99 // exclude everything
        },
        &mut out,
    );
    assert_eq!(used, 3);
    assert!(out.is_empty());
}

#[test]
fn boundary_variates() {
    // u == p excludes (strict comparison), u == 0 always includes.
    let view = RankedView::from_ranked_probs(&[0.5], &[]).unwrap();
    let (unit, _) = unit_with(&view, 1, &[0.5]);
    assert!(unit.is_empty());
    let (unit, _) = unit_with(&view, 1, &[0.0]);
    assert_eq!(unit, vec![0]);
}
