//! Property test: the log-bucket quantile view brackets true quantiles.
//!
//! The flight recorder's percentile exposition is derived purely from the
//! power-of-two histogram buckets, so it can only promise a *bracket*:
//! the estimate never undershoots the true quantile, and for positive
//! normal values inside the unclamped bucket range it overshoots by less
//! than one power of two (estimate ≤ 2 × true). This suite drives those
//! two guarantees through adversarial distributions — point masses,
//! two-sided spikes, zeros, negatives, denormals, and values beyond both
//! bucket clamps.

use ptk_core::check::{check, Config};
use ptk_core::prop_assert;
use ptk_core::rng::{RngExt, StdRng};
use ptk_obs::{Metrics, Recorder};

/// Lowest unclamped bucket bound (`MIN_EXP = -32` in ptk-obs): below this
/// every value shares the clamped bottom bucket and only the upper-bound
/// half of the bracket holds.
const MIN_NORMAL_BUCKET: f64 = 2.3283064365386963e-10; // 2^-32
/// Top of the unclamped range (`MAX_EXP = 31`): at or above this values
/// share the clamped open-top bucket.
const MAX_NORMAL_BUCKET: f64 = 2147483648.0; // 2^31

/// The true `q`-quantile at the same rank definition the view uses:
/// the `ceil(q·n)`-th smallest value.
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One adversarial value: point masses, denormals, zeros, negatives,
/// two-sided spikes and huge outliers, weighted so every regime appears.
fn adversarial_value(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..8u32) {
        0 => 1.0,                                   // point mass
        1 => 0.0,                                   // zero (clamped bucket)
        2 => -rng.random_range(0.001..=100.0f64),   // negative
        3 => f64::MIN_POSITIVE / 2.0,               // denormal
        4 => rng.random_range(1e-15..=1e-9f64),     // tiny spike side
        5 => rng.random_range(1e9..=1e18f64),       // huge spike side
        6 => rng.random_range(0.01..=4.0f64),       // ordinary
        _ => 2f64.powi(rng.random_range(-40..=40)), // exact powers of two
    }
}

#[test]
fn quantile_estimates_bracket_true_quantiles() {
    check(
        "log-bucket quantiles bracket the truth",
        Config::cases(300).sizes(1, 64).seed(0xf11_9487),
        |rng, size| {
            let n = rng.random_range(1..=size.max(1));
            let metrics = Metrics::new();
            let mut values: Vec<f64> = (0..n).map(|_| adversarial_value(rng)).collect();
            for &v in &values {
                metrics.observe("lat", v);
            }
            values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN generated"));
            let snapshot = metrics.snapshot();
            let h = snapshot.histogram("lat").expect("observed");
            for q in [0.5, 0.95, 0.99] {
                let truth = true_quantile(&values, q);
                let estimate = h.quantile(q);
                prop_assert!(
                    estimate >= truth,
                    "estimate {estimate} undershoots true q{q} = {truth} of {values:?}"
                );
                prop_assert!(
                    estimate <= *values.last().expect("non-empty"),
                    "estimate {estimate} exceeds the max of {values:?}"
                );
                // Tightness: within one power-of-two bucket, but only
                // where the bucket lattice is unclamped and ordered.
                if (MIN_NORMAL_BUCKET..MAX_NORMAL_BUCKET).contains(&truth) {
                    prop_assert!(
                        estimate <= truth * 2.0,
                        "estimate {estimate} beyond one bucket of true q{q} = {truth}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn point_mass_quantiles_are_exact() {
    // Every quantile of a point mass collapses to the mass itself: the
    // upper bound clamps to the observed max.
    for mass in [1.0, 0.37, 1e-30, 1e30, 0.0, -2.5] {
        let metrics = Metrics::new();
        for _ in 0..100 {
            metrics.observe("lat", mass);
        }
        let snapshot = metrics.snapshot();
        let h = snapshot.histogram("lat").expect("observed");
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(h.quantile(q), mass, "point mass at {mass}, q{q}");
        }
    }
}

#[test]
fn two_sided_spikes_keep_the_median_in_the_low_spike() {
    // 60 tiny values and 40 huge ones: p50 must answer from the tiny
    // spike, p95/p99 from the huge one — merging the two spikes from
    // separate registries must agree with one registry.
    let tiny = Metrics::new();
    let huge = Metrics::new();
    let combined = Metrics::new();
    for i in 0..60 {
        let v = 1e-12 * (i + 1) as f64;
        tiny.observe("lat", v);
        combined.observe("lat", v);
    }
    for i in 0..40 {
        let v = 1e12 * (i + 1) as f64;
        huge.observe("lat", v);
        combined.observe("lat", v);
    }
    let mut merged = tiny.snapshot();
    merged.merge(&huge.snapshot());
    let (m, c) = (
        merged.histogram("lat").unwrap().quantiles(),
        combined.snapshot().histogram("lat").unwrap().quantiles(),
    );
    assert_eq!(m, c, "quantile view must merge exactly");
    assert!(m.p50 < 1.0, "median answered from the tiny spike: {m:?}");
    assert!(m.p95 > 1e12, "p95 answered from the huge spike: {m:?}");
    assert_eq!(m.max, 40e12);
}
