//! The query flight recorder: a fixed-capacity ring of per-query
//! [`QueryRecord`]s.
//!
//! Every query that passes through the daemon (and any CLI invocation run
//! with `--audit`) leaves one record behind: what was asked (statement
//! label, plan description, semantics, `k`/thresholds), what the engine
//! did (the full per-query counter delta, including the pruning
//! attribution split), how it ended (outcome, cache state, stop reason)
//! and how long it took (queue wait / execution / total wall-clock).
//!
//! Serialization follows the same determinism split as
//! [`Snapshot::to_json`](crate::Snapshot::to_json): with
//! `include_timings = false` the rendering is a pure function of what the
//! query computed — bit-identical across thread widths — while the three
//! wall-clock fields are opt-in. `GET /debug/queries` and golden tests use
//! the timing-free form; the slow-query log uses the full form.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::{push_json_f64, push_json_str, Snapshot};

/// The deterministic description of one query: everything a flight record
/// carries except the envelope (id, outcome, cache state) and wall-clock
/// durations. Producers fill whatever they know; empty strings and empty
/// collections mean "unknown" (a rejected request that was never parsed
/// has only its envelope).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryFlight {
    /// The statement (or a short label like `query k=10 p=0.3`).
    pub label: String,
    /// The planner's one-line pipeline description (`plan.describe()`).
    /// For batches, one description per plan joined with `" | "`.
    pub plan: String,
    /// Ranking semantics served (`ptk`, `u_topk`, `u_krank`, …).
    pub semantics: String,
    /// The `k` of each plan executed (one entry per batch member).
    pub ks: Vec<u64>,
    /// The probability threshold of each plan executed.
    pub thresholds: Vec<f64>,
    /// A width-independent fingerprint of the plan chain, when the
    /// statement planned. This is *not* the result-cache key (which also
    /// covers pool width and seed): flight records must be bit-identical
    /// across thread widths.
    pub fingerprint: Option<u64>,
    /// Why the scan stopped early (`total_topk`, `upper_bound`), or empty
    /// when it ran to exhaustion.
    pub stop: String,
    /// The per-query counter delta: the `ExecStats` split (including
    /// pruning attribution) plus access-layer residency counters, exactly
    /// as a per-query registry recorded them.
    pub counters: BTreeMap<String, u64>,
}

impl QueryFlight {
    /// Folds the deterministic counter section of a per-query registry
    /// snapshot into this flight (summing on repeated names, so batch
    /// members can be absorbed one by one).
    pub fn absorb_counters(&mut self, snapshot: &Snapshot) {
        for (&name, &value) in &snapshot.counters {
            *self.counters.entry(name.to_owned()).or_insert(0) += value;
        }
    }
}

/// One completed (or rejected) query in the flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Monotonic sequence number, assigned by the recorder (1-based).
    pub id: u64,
    /// How the request ended: `ok`, `query_error`, `http_error`,
    /// `rejected` (admission overflow), `timeout`, or `disconnect`
    /// (client hung up before the request was read).
    pub outcome: String,
    /// Result-cache disposition: `hit`, `miss`, `uncacheable`, or `none`
    /// when caching was never consulted.
    pub cache: String,
    /// The deterministic query description.
    pub flight: QueryFlight,
    /// Wall-clock nanoseconds spent in the admission queue.
    pub queue_wait_nanos: u64,
    /// Wall-clock nanoseconds executing the statement.
    pub exec_nanos: u64,
    /// Wall-clock nanoseconds from admission to response.
    pub total_nanos: u64,
}

impl QueryRecord {
    /// Renders the record as a single-line JSON object. With
    /// `include_timings = false` the rendering contains only the
    /// deterministic fields (the form `/debug/queries` serves and golden
    /// tests compare); with `true` the three wall-clock duration fields
    /// are appended.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"id\":{},\"outcome\":", self.id);
        push_json_str(&mut out, &self.outcome);
        out.push_str(",\"cache\":");
        push_json_str(&mut out, &self.cache);
        out.push_str(",\"label\":");
        push_json_str(&mut out, &self.flight.label);
        out.push_str(",\"plan\":");
        push_json_str(&mut out, &self.flight.plan);
        out.push_str(",\"semantics\":");
        push_json_str(&mut out, &self.flight.semantics);
        out.push_str(",\"ks\":[");
        for (i, k) in self.flight.ks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}");
        }
        out.push_str("],\"thresholds\":[");
        for (i, p) in self.flight.thresholds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_f64(&mut out, *p);
        }
        out.push_str("],\"fingerprint\":");
        match self.flight.fingerprint {
            Some(fp) => {
                let _ = write!(out, "\"{fp:016x}\"");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"stop\":");
        push_json_str(&mut out, &self.flight.stop);
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.flight.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push('}');
        if include_timings {
            let _ = write!(
                out,
                ",\"queue_wait_nanos\":{},\"exec_nanos\":{},\"total_nanos\":{}",
                self.queue_wait_nanos, self.exec_nanos, self.total_nanos
            );
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct FlightRing {
    next_id: u64,
    records: VecDeque<QueryRecord>,
}

/// A fixed-capacity, thread-safe ring of the last N [`QueryRecord`]s.
///
/// Bounded by construction: recording the (capacity+1)-th query drops the
/// oldest record, so the recorder can stay on for the life of a daemon
/// without growing. All methods take `&self`; the ring lives behind one
/// mutex, which is touched once per query (never in a scan loop).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightRing>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightRing::default()),
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight ring poisoned")
            .records
            .len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one record, evicting the oldest when full, and returns the
    /// assigned sequence number.
    pub fn record(
        &self,
        outcome: &str,
        cache: &str,
        flight: QueryFlight,
        queue_wait_nanos: u64,
        exec_nanos: u64,
        total_nanos: u64,
    ) -> u64 {
        let mut inner = self.inner.lock().expect("flight ring poisoned");
        inner.next_id += 1;
        let id = inner.next_id;
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
        }
        inner.records.push_back(QueryRecord {
            id,
            outcome: outcome.to_owned(),
            cache: cache.to_owned(),
            flight,
            queue_wait_nanos,
            exec_nanos,
            total_nanos,
        });
        id
    }

    /// A copy of the held records, oldest first.
    pub fn records(&self) -> Vec<QueryRecord> {
        self.inner
            .lock()
            .expect("flight ring poisoned")
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the held records (oldest first) as a JSON array, one record
    /// object per element, with the same timing split as
    /// [`QueryRecord::to_json`].
    pub fn to_json(&self, include_timings: bool) -> String {
        let records = self.records();
        let mut out = String::with_capacity(64 + 256 * records.len());
        out.push('[');
        for (i, record) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record.to_json(include_timings));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metrics, Recorder};

    fn sample_flight() -> QueryFlight {
        let metrics = Metrics::new();
        metrics.add("engine.scanned", 6);
        metrics.add("engine.answers", 3);
        metrics.record_nanos("engine.query", 1234); // timings never absorbed
        let mut flight = QueryFlight {
            label: "SELECT TOP 2 * FROM t WITH PROBABILITY >= 0.35".to_owned(),
            plan: "scan → prune → dp(k=2)".to_owned(),
            semantics: "ptk".to_owned(),
            ks: vec![2],
            thresholds: vec![0.35],
            fingerprint: Some(0xdead_beef),
            stop: "total_topk".to_owned(),
            counters: BTreeMap::new(),
        };
        flight.absorb_counters(&metrics.snapshot());
        flight
    }

    #[test]
    fn record_json_is_deterministic_and_splits_timings() {
        let recorder = FlightRecorder::new(8);
        recorder.record("ok", "miss", sample_flight(), 10, 20, 30);
        let records = recorder.records();
        assert_eq!(records.len(), 1);
        let bare = records[0].to_json(false);
        assert_eq!(
            bare,
            "{\"id\":1,\"outcome\":\"ok\",\"cache\":\"miss\",\
             \"label\":\"SELECT TOP 2 * FROM t WITH PROBABILITY >= 0.35\",\
             \"plan\":\"scan → prune → dp(k=2)\",\"semantics\":\"ptk\",\
             \"ks\":[2],\"thresholds\":[0.35],\
             \"fingerprint\":\"00000000deadbeef\",\"stop\":\"total_topk\",\
             \"counters\":{\"engine.answers\":3,\"engine.scanned\":6}}"
        );
        assert!(!bare.contains("nanos"), "timing-free form leaks a clock");
        let timed = records[0].to_json(true);
        assert!(
            timed.contains("\"queue_wait_nanos\":10,\"exec_nanos\":20,\"total_nanos\":30"),
            "{timed}"
        );
    }

    #[test]
    fn ring_is_bounded_and_ids_are_monotonic() {
        let recorder = FlightRecorder::new(3);
        assert!(recorder.is_empty());
        for _ in 0..5 {
            recorder.record("ok", "none", QueryFlight::default(), 0, 0, 0);
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.capacity(), 3);
        let ids: Vec<u64> = recorder.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4, 5], "oldest evicted, ids keep counting");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record("ok", "none", QueryFlight::default(), 0, 0, 0);
        recorder.record("ok", "none", QueryFlight::default(), 0, 0, 0);
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.records()[0].id, 2);
    }

    #[test]
    fn json_array_renders_all_records() {
        let recorder = FlightRecorder::new(4);
        recorder.record("ok", "miss", QueryFlight::default(), 0, 0, 0);
        recorder.record("rejected", "none", QueryFlight::default(), 0, 0, 0);
        let json = recorder.to_json(false);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"outcome\":\"rejected\""), "{json}");
        assert_eq!(json.matches("\"id\":").count(), 2);
    }

    #[test]
    fn absorb_counters_sums_repeated_names() {
        let mut flight = QueryFlight::default();
        let a = Metrics::new();
        a.add("engine.scanned", 2);
        let b = Metrics::new();
        b.add("engine.scanned", 3);
        b.add("engine.answers", 1);
        flight.absorb_counters(&a.snapshot());
        flight.absorb_counters(&b.snapshot());
        assert_eq!(flight.counters.get("engine.scanned"), Some(&5));
        assert_eq!(flight.counters.get("engine.answers"), Some(&1));
    }
}
