//! Zero-dependency observability for the PT-k stack.
//!
//! Instrumented code talks to a [`Recorder`]: monotonic counters
//! ([`Recorder::add`]), f64 histograms over fixed log-scale buckets
//! ([`Recorder::observe`]), and span timings ([`Recorder::record_nanos`],
//! usually via the RAII [`span`] helper or a [`PhaseClock`]). The default
//! implementation is [`Noop`], so instrumentation costs a virtual call and
//! nothing else when nobody is listening — in particular no `Instant` is
//! ever read while a recorder reports [`Recorder::enabled`] `false`.
//!
//! [`Metrics`] is the concrete registry. Its [`Metrics::snapshot`] returns
//! a [`Snapshot`] whose counters and histograms are pure functions of the
//! recorded values: bucket assignment uses the binary exponent of the
//! value (integer bit manipulation, no floating-point logarithm), and all
//! maps are ordered, so two runs with the same seed produce bit-identical
//! snapshots on every platform. Wall-clock timings are inherently
//! non-deterministic and are therefore kept in a separate section that
//! [`Snapshot::to_json`] *excludes unless explicitly asked for* — golden
//! tests compare `to_json(false)`.
//!
//! ```
//! use ptk_obs::{Metrics, Recorder};
//!
//! let metrics = Metrics::new();
//! metrics.add("engine.scanned", 6);
//! metrics.observe("sampling.unit_len", 3.0);
//! let snapshot = metrics.snapshot();
//! assert_eq!(snapshot.counter("engine.scanned"), 6);
//! assert!(snapshot.to_json(false).contains("\"engine.scanned\":6"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod trace;

pub use flight::{FlightRecorder, QueryFlight, QueryRecord};
pub use trace::{
    render_logical, to_chrome_json, validate_chrome_trace, EventKind, Mark, NoopSink, Payload,
    PruneRule, RingSink, SharedSink, Stage, StopRule, TraceCheck, TraceEvent, TraceSink, Tracer,
};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink for runtime metrics. All methods take `&self` so a recorder can be
/// shared freely; implementations must be thread-safe.
///
/// Metric names are `&'static str` by design: instrumentation points name
/// their counters with literals, and the registry never allocates for a
/// name.
pub trait Recorder: Send + Sync {
    /// Whether anything is listening. Instrumented code consults this
    /// before doing work that only exists to be recorded (reading clocks,
    /// formatting); counters should be recorded unconditionally.
    fn enabled(&self) -> bool {
        false
    }

    /// Increments the monotonic counter `name` by `delta`.
    fn add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records `value` into the histogram `name`.
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Adds `nanos` of wall-clock time to the span `name`.
    fn record_nanos(&self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }
}

/// The recorder that records nothing ([`Recorder::enabled`] is `false`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Recorder for Noop {}

/// A recorder shared across owners (e.g. a long-lived data source and the
/// query that polls it).
pub type SharedRecorder = Arc<dyn Recorder>;

/// Histogram buckets are powers of two: bucket `e` counts values in
/// `[2^e, 2^(e+1))`. Exponents are clamped to this range, giving 64
/// buckets — ample for the unit lengths, byte counts and cell counts the
/// stack observes.
const MIN_EXP: i32 = -32;
/// Upper clamp of the bucket exponent range (see [`MIN_EXP`]).
const MAX_EXP: i32 = 31;

/// The log-scale bucket holding `value`: its IEEE-754 binary exponent,
/// clamped to `[MIN_EXP, MAX_EXP]`. Pure integer bit manipulation, so the
/// assignment is exact and identical on every platform. Non-positive and
/// non-finite values land in the lowest bucket.
fn bucket_exponent(value: f64) -> i32 {
    // NaN fails `is_finite`, so it lands in the lowest bucket too.
    if value <= 0.0 || !value.is_finite() {
        return MIN_EXP;
    }
    let biased = ((value.to_bits() >> 52) & 0x7ff) as i32;
    // Subnormals (biased exponent 0) are far below MIN_EXP anyway.
    let exponent = if biased == 0 { -1023 } else { biased - 1023 };
    exponent.clamp(MIN_EXP, MAX_EXP)
}

#[derive(Debug, Clone, Default)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_exponent(value)).or_insert(0) += 1;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Timing {
    count: u64,
    total_nanos: u64,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    timings: BTreeMap<&'static str, Timing>,
}

/// A concrete metrics registry: counters, histograms and span timings
/// behind one mutex. Cheap enough for per-phase and per-unit recording;
/// hot loops should accumulate locally (e.g. via [`PhaseClock`] or
/// `ExecStats`-style structs) and flush once.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Registry>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Takes a consistent snapshot of everything recorded so far.
    ///
    /// # Panics
    /// Panics if a previous user of the registry panicked mid-record.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            counters: inner.counters.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&name, h)| {
                    (
                        name,
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            buckets: h.buckets.iter().map(|(&e, &c)| (e, c)).collect(),
                        },
                    )
                })
                .collect(),
            timings: inner
                .timings
                .iter()
                .map(|(&name, t)| {
                    (
                        name,
                        TimingSnapshot {
                            count: t.count,
                            total_nanos: t.total_nanos,
                        },
                    )
                })
                .collect(),
            // Scheduler facts are reported by the batch executor after the
            // fact, not recorded through the registry.
            scheduler: BTreeMap::new(),
        }
    }
}

impl Recorder for Metrics {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn observe(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.histograms.entry(name).or_default().observe(value);
    }

    fn record_nanos(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let timing = inner.timings.entry(name).or_default();
        timing.count += 1;
        timing.total_nanos += nanos;
    }
}

/// Starts an RAII span: the wall-clock time between this call and the
/// returned guard's drop is recorded under `name`. When the recorder is
/// disabled no clock is read at all.
pub fn span<'a>(recorder: &'a dyn Recorder, name: &'static str) -> Span<'a> {
    Span {
        armed: recorder.enabled().then(|| (recorder, name, Instant::now())),
    }
}

/// Guard returned by [`span`]; records its elapsed time when dropped.
pub struct Span<'a> {
    armed: Option<(&'a dyn Recorder, &'static str, Instant)>,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.armed.as_ref().map(|(_, name, _)| name))
            .finish()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((recorder, name, start)) = self.armed.take() {
            recorder.record_nanos(name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Accumulates the wall-clock time of one *phase* of a loop without
/// touching the recorder per iteration: [`PhaseClock::time`] wraps each
/// slice of work, [`PhaseClock::flush`] records the total once. Disabled
/// recorders skip the clock reads entirely.
#[derive(Debug)]
pub struct PhaseClock {
    enabled: bool,
    nanos: u64,
}

impl PhaseClock {
    /// A clock that is live only when `recorder` is enabled.
    pub fn new(recorder: &dyn Recorder) -> PhaseClock {
        PhaseClock::enabled_if(recorder.enabled())
    }

    /// A clock that is live iff `enabled` — for callers with a liveness
    /// condition beyond a single recorder (the executor also times phases
    /// when a trace sink is attached).
    pub fn enabled_if(enabled: bool) -> PhaseClock {
        PhaseClock { enabled, nanos: 0 }
    }

    /// Runs `work`, accumulating its wall-clock time when live.
    pub fn time<T>(&mut self, work: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return work();
        }
        let start = Instant::now();
        let value = work();
        self.nanos += start.elapsed().as_nanos() as u64;
        value
    }

    /// Records the accumulated time as one timing sample under `name`.
    pub fn flush(&self, recorder: &dyn Recorder, name: &'static str) {
        if self.enabled {
            recorder.record_nanos(name, self.nanos);
        }
    }

    /// The accumulated wall-clock nanoseconds so far (0 when the clock was
    /// built against a disabled recorder). The executor reads this to lay
    /// phase totals out as synthetic trace spans.
    pub fn nanos(&self) -> u64 {
        self.nanos
    }
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// `(exponent, count)` pairs, ascending: bucket `e` counted values in
    /// `[2^e, 2^(e+1))`. Only non-empty buckets appear.
    pub buckets: Vec<(i32, u64)>,
}

/// Log-bucket quantile estimates of a histogram (see
/// [`HistogramSnapshot::quantiles`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Upper-bound estimate of the 50th percentile.
    pub p50: f64,
    /// Upper-bound estimate of the 95th percentile.
    pub p95: f64,
    /// Upper-bound estimate of the 99th percentile.
    pub p99: f64,
    /// The largest observed value (exact).
    pub max: f64,
}

impl HistogramSnapshot {
    /// An upper-bound estimate of the `q`-quantile (`0 < q <= 1`) derived
    /// from the log-scale buckets: the exclusive top `2^(e+1)` of the
    /// bucket holding the quantile's rank, clamped to the observed
    /// maximum. Because bucket `e` holds values in `[2^e, 2^(e+1))`, the
    /// estimate never undershoots the true quantile and overshoots it by
    /// less than one power of two (for positive normal values; zeros,
    /// negatives and denormals all share the lowest bucket, where only
    /// the upper-bound guarantee holds). Purely a function of the bucket
    /// counts and `max`, so the view is deterministic and merges exactly
    /// along with the buckets.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(exp, count) in &self.buckets {
            cumulative += count;
            if cumulative >= target {
                // The top bucket is clamped (it holds everything at or
                // above 2^MAX_EXP), so its nominal top is not an upper
                // bound; the exact max is.
                if exp >= MAX_EXP {
                    return self.max;
                }
                return 2f64.powi(exp + 1).min(self.max);
            }
        }
        self.max
    }

    /// The p50/p95/p99/max view rendered by the text, JSON and Prometheus
    /// snapshot formats.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// One span's timing in a [`Snapshot`] — excluded from deterministic
/// output (see [`Snapshot::to_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// Number of recorded spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_nanos: u64,
}

/// A point-in-time copy of a [`Metrics`] registry. Ordered maps make
/// every rendering deterministic; the timing section is the only
/// non-deterministic part and is opt-in per rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
    /// Span timings by name (wall-clock; never part of golden output).
    pub timings: BTreeMap<&'static str, TimingSnapshot>,
    /// Runtime scheduling facts by name (workers spawned, items stolen,
    /// segments dispatched, …). Like `timings`, these describe *how* the
    /// run was scheduled, not *what* it computed, and depend on OS timing —
    /// so they are excluded from the deterministic rendering
    /// ([`Snapshot::to_json`] with `include_timings = false`) and may
    /// differ across pool widths while the deterministic sections stay
    /// bit-identical.
    pub scheduler: BTreeMap<&'static str, u64>,
}

/// Minimal JSON string escape for metric names (which are identifiers, but
/// defensiveness is cheap).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an f64 for JSON. Finite values use Rust's shortest round-trip
/// `Display`; non-finite values (which valid JSON cannot carry) become
/// quoted strings.
pub(crate) fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        let _ = write!(out, "\"{value}\"");
    }
}

/// One-line `# HELP` description for a metric name, used by
/// [`Snapshot::to_prometheus`]. Curated text for the names the stack
/// records today; prefix fallbacks keep future names presentable without
/// another table entry.
fn metric_help(name: &str) -> &'static str {
    match name {
        "engine.scanned" => "Tuples retrieved from the ranked list (scan depth).",
        "engine.evaluated" => "Tuples whose exact top-k probability was computed.",
        "engine.pruned_membership" => "Tuples skipped by Theorem 3(1) membership pruning.",
        "engine.pruned_membership.tuple" => "Theorem 3(1) prunes decided per tuple after a decode.",
        "engine.pruned_membership.block" => {
            "Theorem 3(1) prunes decided per block, skipping the decode."
        }
        "engine.pruned_rule" => "Tuples skipped by rule pruning (Theorem 3(2) or Theorem 4).",
        "engine.pruned_rule.whole" => "Tuples pruned because Theorem 3(2) failed their whole rule.",
        "engine.pruned_rule.member" => "Tuples pruned by Theorem 4 against a failed rule sibling.",
        "engine.dp_cells" => "Subset-probability dynamic-programming cells computed.",
        "engine.entries_recomputed" => {
            "Compressed-dominant-set entries whose DP row was recomputed."
        }
        "engine.rules_compressed" => "Distinct rules compressed into rule-tuples during the scan.",
        "engine.answers" => "Tuples in the answer set.",
        "engine.gf.rows_incremental" => {
            "Generating-function rows served by the incremental recurrence."
        }
        "engine.gf.rows_refolded" => "Generating-function rows refolded exactly as a fallback.",
        "engine.stop.total_topk" => "Scans stopped early by Theorem 5 (total top-k mass).",
        "engine.stop.upper_bound" => "Scans stopped early by the upper-bound check.",
        "serve.requests" => "Requests fully read off the wire.",
        "serve.responses_ok" => "Requests answered 200.",
        "serve.query_errors" => "Statements rejected by the handler (400).",
        "serve.http_errors" => "Malformed HTTP requests (truncated, garbage, oversized).",
        "serve.rejected.queue_full" => "Connections rejected 429 by admission control.",
        "serve.rejected.timeout" => "Requests rejected 408 after the per-request timeout.",
        "serve.client_disconnects" => "Clients that hung up mid-request or mid-response.",
        "serve.cache.hits" => "Result-cache hits.",
        "serve.cache.misses" => "Cacheable requests that had to execute.",
        "serve.cache.uncacheable" => "Requests that can never be cached.",
        "serve.queue_depth" => "Admission-queue depth observed at enqueue time.",
        "serve.latency_ms" => "Request latency in milliseconds, admission to response.",
        "serve.request" => "Wall-clock execution time of handled statements.",
        "access.file.bytes_read" => "Bytes read from run files.",
        "access.file.records" => "Records decoded from run files.",
        "access.file.opens" => "Run files opened.",
        "access.block.read" => "Blocks fetched and decoded.",
        "access.block.skip" => "Blocks skipped whole under the block-level membership bound.",
        "access.block.decode_bytes" => "Bytes actually decoded from fetched blocks.",
        "access.block.pool_hit" => "Block fetches served by a resident pool frame.",
        "access.block.pool_miss" => "Block fetches that had to read the file.",
        "access.block.pin" => "Frame pins taken by scan cursors.",
        "access.block.evict" => "Resident frames evicted to make room for a fetch.",
        "batch.workers_spawned" => "Worker threads the batch scheduler spawned.",
        "batch.tasks" => "Tasks executed by the batch scheduler.",
        "batch.steals" => "Tasks stolen from another worker's deque.",
        "batch.segments" => "Rule-closed segments dispatched by intra-query partitioning.",
        "batch.segmented_queries" => "Queries executed through segment partitioning.",
        n if n.starts_with("engine.phase.") => "Wall-clock time of one engine phase.",
        n if n.starts_with("engine.") => "Engine execution metric.",
        n if n.starts_with("serve.") => "Daemon metric.",
        n if n.starts_with("access.") => "Storage access metric.",
        n if n.starts_with("sampling.") => "Sampling engine metric.",
        n if n.starts_with("batch.") => "Batch scheduler metric.",
        _ => "PT-k runtime metric.",
    }
}

impl Snapshot {
    /// The counter's value, or 0 if it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if anything was observed under it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.timings.is_empty()
            && self.scheduler.is_empty()
    }

    /// The named scheduler fact, or 0 if it was never reported.
    pub fn scheduler_value(&self, name: &str) -> u64 {
        self.scheduler.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as a single-line JSON object. With
    /// `include_timings = false` the output is a pure function of the
    /// recorded counters and histograms — this is the form golden tests
    /// compare. With `true`, `"timings"` (span name →
    /// `{count, total_nanos}`) and `"scheduler"` (fact → value) sections
    /// are appended for human consumption.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count);
            push_json_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            push_json_f64(&mut out, h.min);
            out.push_str(",\"max\":");
            push_json_f64(&mut out, h.max);
            out.push_str(",\"buckets\":{");
            for (j, (exp, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"2^{exp}\":{count}");
            }
            // The quantile view is derived from the buckets and max, so it
            // stays inside the deterministic section.
            let q = h.quantiles();
            out.push_str("},\"q\":{\"p50\":");
            push_json_f64(&mut out, q.p50);
            out.push_str(",\"p95\":");
            push_json_f64(&mut out, q.p95);
            out.push_str(",\"p99\":");
            push_json_f64(&mut out, q.p99);
            out.push_str(",\"max\":");
            push_json_f64(&mut out, q.max);
            out.push_str("}}");
        }
        out.push('}');
        if include_timings {
            out.push_str(",\"timings\":{");
            for (i, (name, t)) in self.timings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, name);
                let _ = write!(
                    out,
                    ":{{\"count\":{},\"total_nanos\":{}}}",
                    t.count, t.total_nanos
                );
            }
            out.push('}');
            out.push_str(",\"scheduler\":{");
            for (i, (name, value)) in self.scheduler.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, name);
                let _ = write!(out, ":{value}");
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Folds another snapshot into this one, as if every event recorded in
    /// `other` had also been recorded here: counters and timings sum,
    /// histograms merge count/sum/min/max and add bucket counts.
    ///
    /// Merging is commutative and associative over the deterministic
    /// sections (counters and histogram counts/buckets are integer sums;
    /// histogram `sum` is an f64 accumulation, so merge in a fixed order —
    /// e.g. worker index — when bit-stable output matters). This is how
    /// the batch executor combines per-worker registries into one
    /// [`Snapshot`] at the barrier.
    pub fn merge(&mut self, other: &Snapshot) {
        for (&name, &value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (&name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name, h.clone());
                }
                Some(mine) => {
                    if h.count > 0 {
                        if mine.count == 0 {
                            mine.min = h.min;
                            mine.max = h.max;
                        } else {
                            mine.min = mine.min.min(h.min);
                            mine.max = mine.max.max(h.max);
                        }
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                    for &(exp, count) in &h.buckets {
                        match mine.buckets.binary_search_by_key(&exp, |&(e, _)| e) {
                            Ok(i) => mine.buckets[i].1 += count,
                            Err(i) => mine.buckets.insert(i, (exp, count)),
                        }
                    }
                }
            }
        }
        for (&name, t) in &other.timings {
            let mine = self.timings.entry(name).or_insert(TimingSnapshot {
                count: 0,
                total_nanos: 0,
            });
            mine.count += t.count;
            mine.total_nanos += t.total_nanos;
        }
        for (&name, &value) in &other.scheduler {
            *self.scheduler.entry(name).or_insert(0) += value;
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`--stats prom`). Counters become `ptk_<name>` counters, histograms
    /// become native Prometheus histograms with *cumulative* `_bucket`
    /// series (each `le` upper bound is the bucket's exclusive top `2^(e+1)`,
    /// closed with `+Inf`) plus `_sum` and `_count`, and span timings become
    /// `_nanos_total`/`_spans_total` counter pairs. Metric names sanitize
    /// `.` and any other non-identifier character to `_`.
    ///
    /// Like [`Snapshot::to_text`], this rendering includes wall-clock
    /// timings — it feeds scrapes, not golden files; golden tests should
    /// render snapshots whose timing section is empty.
    pub fn to_prometheus(&self) -> String {
        fn sanitized(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("ptk_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let mut out = String::with_capacity(256);
        for (raw, value) in &self.counters {
            let name = sanitized(raw);
            let _ = writeln!(out, "# HELP {name} {}", metric_help(raw));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (raw, h) in &self.histograms {
            let name = sanitized(raw);
            let _ = writeln!(out, "# HELP {name} {}", metric_help(raw));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(exp, count) in &h.buckets {
                cumulative += count;
                let le = 2f64.powi(exp + 1);
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = write!(out, "{name}_sum ");
            let _ = writeln!(out, "{}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            // Percentile exposition: log-bucket upper-bound estimates as
            // companion gauges (see HistogramSnapshot::quantile).
            let q = h.quantiles();
            for (suffix, value, help) in [
                ("p50", q.p50, "Log-bucket upper-bound estimate of the p50."),
                ("p95", q.p95, "Log-bucket upper-bound estimate of the p95."),
                ("p99", q.p99, "Log-bucket upper-bound estimate of the p99."),
                ("max", q.max, "Largest observed value."),
            ] {
                let _ = writeln!(out, "# HELP {name}_{suffix} {help}");
                let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                let _ = writeln!(out, "{name}_{suffix} {value}");
            }
        }
        for (raw, t) in &self.timings {
            let name = sanitized(raw);
            let _ = writeln!(
                out,
                "# HELP {name}_nanos_total Total wall-clock nanoseconds in this span. {}",
                metric_help(raw)
            );
            let _ = writeln!(out, "# TYPE {name}_nanos_total counter");
            let _ = writeln!(out, "{name}_nanos_total {}", t.total_nanos);
            let _ = writeln!(
                out,
                "# HELP {name}_spans_total Number of recorded spans. {}",
                metric_help(raw)
            );
            let _ = writeln!(out, "# TYPE {name}_spans_total counter");
            let _ = writeln!(out, "{name}_spans_total {}", t.count);
        }
        for (raw, value) in &self.scheduler {
            let name = sanitized(raw);
            let _ = writeln!(out, "# HELP {name} {}", metric_help(raw));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }

    /// Renders the snapshot as human-readable lines (`--stats text`).
    /// Includes timings: the text form is for eyeballs, not golden files.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter   {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name}: count={} sum={} min={} max={}",
                h.count, h.sum, h.min, h.max
            );
            for (exp, count) in &h.buckets {
                let _ = writeln!(out, "          [2^{exp}, 2^{}): {count}", exp + 1);
            }
            let q = h.quantiles();
            let _ = writeln!(
                out,
                "          p50<={} p95<={} p99<={} max={}",
                q.p50, q.p95, q.p99, q.max
            );
        }
        for (name, t) in &self.timings {
            let _ = writeln!(
                out,
                "span      {name}: count={} total={:.3}ms",
                t.count,
                t.total_nanos as f64 / 1e6
            );
        }
        for (name, value) in &self.scheduler {
            let _ = writeln!(out, "sched     {name} = {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add("a", 2);
        m.add("a", 3);
        m.add("b", 1);
        let s = m.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_binary_exponents() {
        let m = Metrics::new();
        for v in [1.0, 1.5, 2.0, 3.0, 4.0, 0.5, 0.75] {
            m.observe("h", v);
        }
        let s = m.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.0);
        // [1,2): {1, 1.5}; [2,4): {2, 3}; [4,8): {4}; [0.5,1): {0.5, 0.75}
        assert_eq!(h.buckets, vec![(-1, 2), (0, 2), (1, 2), (2, 1)]);
    }

    #[test]
    fn bucket_exponent_is_exact_and_clamped() {
        assert_eq!(bucket_exponent(1.0), 0);
        assert_eq!(bucket_exponent(1.99), 0);
        assert_eq!(bucket_exponent(2.0), 1);
        assert_eq!(bucket_exponent(0.5), -1);
        assert_eq!(bucket_exponent(0.0), MIN_EXP);
        assert_eq!(bucket_exponent(-3.0), MIN_EXP);
        assert_eq!(bucket_exponent(f64::NAN), MIN_EXP);
        assert_eq!(bucket_exponent(f64::INFINITY), MIN_EXP);
        assert_eq!(bucket_exponent(1e-300), MIN_EXP);
        assert_eq!(bucket_exponent(1e300), MAX_EXP);
        assert_eq!(bucket_exponent(f64::MIN_POSITIVE / 2.0), MIN_EXP);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_excludes_timings() {
        let build = |order_flip: bool| {
            let m = Metrics::new();
            let names: [&'static str; 2] = if order_flip { ["b", "a"] } else { ["a", "b"] };
            for n in names {
                m.add(n, 1);
            }
            m.observe("len", 3.0);
            m.record_nanos("phase", 123);
            m.snapshot().to_json(false)
        };
        let json = build(false);
        assert_eq!(json, build(true), "insertion order must not matter");
        assert_eq!(
            json,
            "{\"counters\":{\"a\":1,\"b\":1},\"histograms\":{\"len\":{\"count\":1,\
             \"sum\":3,\"min\":3,\"max\":3,\"buckets\":{\"2^1\":1},\
             \"q\":{\"p50\":3,\"p95\":3,\"p99\":3,\"max\":3}}}}"
        );
        assert!(!json.contains("nanos"));
    }

    #[test]
    fn snapshot_json_can_include_timings() {
        let m = Metrics::new();
        m.record_nanos("phase", 100);
        m.record_nanos("phase", 50);
        let json = m.snapshot().to_json(true);
        assert!(
            json.contains("\"timings\":{\"phase\":{\"count\":2,\"total_nanos\":150}}"),
            "{json}"
        );
    }

    #[test]
    fn scheduler_section_is_diagnostic_only() {
        let mut s = Snapshot::default();
        s.counters.insert("engine.scanned", 7);
        s.scheduler.insert("batch.steals", 3);
        s.scheduler.insert("batch.workers_spawned", 4);
        // Excluded from the deterministic rendering: scheduler facts vary
        // with OS timing and pool width while golden output must not.
        assert!(!s.to_json(false).contains("scheduler"));
        assert!(
            s.to_json(true)
                .contains("\"scheduler\":{\"batch.steals\":3,\"batch.workers_spawned\":4}"),
            "{}",
            s.to_json(true)
        );
        // Published through the scrape + text renderings.
        let prom = s.to_prometheus();
        assert!(prom.contains("ptk_batch_steals 3"), "{prom}");
        assert!(prom.contains("ptk_batch_workers_spawned 4"), "{prom}");
        assert!(s.to_text().contains("sched     batch.steals = 3"));
        // Merge sums, like every other section.
        let mut other = Snapshot::default();
        other.scheduler.insert("batch.steals", 2);
        s.merge(&other);
        assert_eq!(s.scheduler_value("batch.steals"), 5);
        assert_eq!(s.scheduler_value("missing"), 0);
        let sched_only = Snapshot {
            scheduler: [("batch.tasks", 1u64)].into_iter().collect(),
            ..Snapshot::default()
        };
        assert!(!sched_only.is_empty());
    }

    #[test]
    fn span_records_timing_only_when_enabled() {
        let m = Metrics::new();
        {
            let _s = span(&m, "work");
        }
        let s = m.snapshot();
        assert_eq!(s.timings.get("work").map(|t| t.count), Some(1));

        // A Noop recorder stays empty (and reads no clock).
        {
            let _s = span(&Noop, "work");
        }
    }

    #[test]
    fn phase_clock_accumulates_and_flushes_once() {
        let m = Metrics::new();
        let mut clock = PhaseClock::new(&m);
        let v: u64 = clock.time(|| 21) + clock.time(|| 21);
        assert_eq!(v, 42);
        clock.flush(&m, "phase");
        let s = m.snapshot();
        assert_eq!(s.timings.get("phase").map(|t| t.count), Some(1));

        let mut dead = PhaseClock::new(&Noop);
        assert_eq!(dead.time(|| 1), 1);
        dead.flush(&Noop, "phase");
    }

    #[test]
    fn noop_records_nothing() {
        assert!(!Noop.enabled());
        Noop.add("a", 1);
        Noop.observe("h", 1.0);
        Noop.record_nanos("t", 1);
    }

    #[test]
    fn text_rendering_lists_everything() {
        let m = Metrics::new();
        m.add("engine.scanned", 6);
        m.observe("len", 2.0);
        m.record_nanos("query", 1_500_000);
        let text = m.snapshot().to_text();
        assert!(text.contains("counter   engine.scanned = 6"), "{text}");
        assert!(text.contains("histogram len: count=1"), "{text}");
        assert!(text.contains("span      query: count=1"), "{text}");
    }

    #[test]
    fn json_escapes_are_safe() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000a\"");
        let mut f = String::new();
        push_json_f64(&mut f, f64::INFINITY);
        assert_eq!(f, "\"inf\"");
    }

    #[test]
    fn shared_recorder_is_usable_across_threads() {
        let metrics = Arc::new(Metrics::new());
        let shared: SharedRecorder = Arc::clone(&metrics) as SharedRecorder;
        let pool = ptk_par::ThreadPool::new(4);
        pool.parallel_map(&[(); 4], |_, _| {
            for _ in 0..100 {
                shared.add("hits", 1);
            }
        });
        assert_eq!(metrics.snapshot().counter("hits"), 400);
    }

    #[test]
    fn merge_sums_counters_and_timings() {
        let a = Metrics::new();
        a.add("hits", 3);
        a.add("only_a", 1);
        a.record_nanos("phase", 100);
        let b = Metrics::new();
        b.add("hits", 4);
        b.add("only_b", 2);
        b.record_nanos("phase", 50);
        b.record_nanos("other", 7);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("hits"), 7);
        assert_eq!(merged.counter("only_a"), 1);
        assert_eq!(merged.counter("only_b"), 2);
        assert_eq!(
            merged.timings.get("phase"),
            Some(&TimingSnapshot {
                count: 2,
                total_nanos: 150
            })
        );
        assert_eq!(merged.timings.get("other").map(|t| t.count), Some(1));
    }

    #[test]
    fn merge_equals_recording_into_one_registry() {
        let values_a = [1.0, 3.5, 0.25, 8.0];
        let values_b = [2.0, 0.125, 16.0];

        let combined = Metrics::new();
        for v in values_a.iter().chain(&values_b) {
            combined.observe("len", *v);
        }

        let a = Metrics::new();
        for v in values_a {
            a.observe("len", v);
        }
        let b = Metrics::new();
        for v in values_b {
            b.observe("len", v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        // Same order of f64 additions (all of a, then all of b), so the
        // histogram sum is bit-identical, not just close.
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn merge_in_fixed_order_is_bit_stable_and_integers_commute() {
        // The f64 caveat on Snapshot::merge, pinned: histogram `sum` is a
        // float accumulation, so merging worker snapshots in a *fixed*
        // order must be bit-stable run to run, while the integer sections
        // (counters, bucket counts, histogram count) must not care about
        // order at all. 0.1 + 0.2 + 0.3 groups differently under
        // reassociation, making the sums order-sensitive on purpose.
        let worker = |values: &[f64], hits: u64| {
            let m = Metrics::new();
            for &v in values {
                m.observe("len", v);
            }
            m.add("hits", hits);
            m.snapshot()
        };
        let snapshots = [
            worker(&[0.1, 0.2], 3),
            worker(&[0.3], 4),
            worker(&[0.7, 1.0e-3], 5),
        ];

        let merge_order = |order: &[usize]| {
            let mut merged = Snapshot::default();
            for &i in order {
                merged.merge(&snapshots[i]);
            }
            merged
        };
        // Fixed worker order: bit-stable, down to the f64 sum.
        let a = merge_order(&[0, 1, 2]);
        let b = merge_order(&[0, 1, 2]);
        assert_eq!(
            a.histogram("len").unwrap().sum.to_bits(),
            b.histogram("len").unwrap().sum.to_bits()
        );
        assert_eq!(a.to_json(false), b.to_json(false));

        // Reversed order: integer sections identical, sum merely close.
        let r = merge_order(&[2, 1, 0]);
        assert_eq!(a.counters, r.counters);
        let (ha, hr) = (a.histogram("len").unwrap(), r.histogram("len").unwrap());
        assert_eq!(ha.count, hr.count);
        assert_eq!(ha.buckets, hr.buckets);
        assert_eq!(ha.min.to_bits(), hr.min.to_bits());
        assert_eq!(ha.max.to_bits(), hr.max.to_bits());
        assert!((ha.sum - hr.sum).abs() < 1e-12);
        // ... and the caveat is real: this particular reassociation of
        // f64 additions does change the bit pattern.
        assert_ne!(
            ha.sum.to_bits(),
            hr.sum.to_bits(),
            "expected an order-sensitive sum to demonstrate the caveat"
        );
    }

    #[test]
    fn quantile_view_is_bucket_upper_bound() {
        let m = Metrics::new();
        for v in [1.0, 1.5, 3.0, 0.5] {
            m.observe("len", v);
        }
        let s = m.snapshot();
        let q = s.histogram("len").unwrap().quantiles();
        // p50 rank 2 lands in [1,2) → bound 2; p95/p99 rank 4 lands in
        // [2,4) → bound 4, clamped to the exact max 3.
        assert_eq!(q.p50, 2.0);
        assert_eq!(q.p95, 3.0);
        assert_eq!(q.p99, 3.0);
        assert_eq!(q.max, 3.0);
        // Text and prom renderings carry the view.
        assert!(
            s.to_text().contains("p50<=2 p95<=3 p99<=3 max=3"),
            "{}",
            s.to_text()
        );
        assert!(
            s.to_prometheus().contains("ptk_len_p50 2\n"),
            "{}",
            s.to_prometheus()
        );
    }

    #[test]
    fn quantiles_of_empty_and_clamped_histograms() {
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantiles().p99, 0.0);
        // Values above 2^MAX_EXP live in a clamped open-top bucket: the
        // estimate must fall back to the exact max, never undershoot.
        let m = Metrics::new();
        m.observe("big", 1e300);
        m.observe("big", 2e300);
        let s = m.snapshot();
        let q = s.histogram("big").unwrap().quantiles();
        assert_eq!(q.p50, 2e300);
        assert_eq!(q.p99, 2e300);
        // Zeros and negatives share the lowest bucket; the estimate still
        // bounds them from above.
        let m = Metrics::new();
        m.observe("low", 0.0);
        m.observe("low", -5.0);
        let s = m.snapshot();
        let q = s.histogram("low").unwrap().quantiles();
        assert!(q.p50 >= -5.0 && q.p99 >= 0.0, "{q:?}");
    }

    #[test]
    fn quantile_view_merges_exactly() {
        let a = Metrics::new();
        let b = Metrics::new();
        let combined = Metrics::new();
        for v in [0.25, 1.0, 7.0] {
            a.observe("len", v);
            combined.observe("len", v);
        }
        for v in [2.0, 1024.0] {
            b.observe("len", v);
            combined.observe("len", v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(
            merged.histogram("len").unwrap().quantiles(),
            combined.snapshot().histogram("len").unwrap().quantiles()
        );
    }

    #[test]
    fn prometheus_rendering_matches_golden() {
        let m = Metrics::new();
        m.add("engine.scanned", 6);
        m.add("engine.answers", 3);
        for v in [1.0, 1.5, 3.0, 0.5] {
            m.observe("sampling.unit_len", v);
        }
        let text = m.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# HELP ptk_engine_answers Tuples in the answer set.\n\
             # TYPE ptk_engine_answers counter\n\
             ptk_engine_answers 3\n\
             # HELP ptk_engine_scanned Tuples retrieved from the ranked list (scan depth).\n\
             # TYPE ptk_engine_scanned counter\n\
             ptk_engine_scanned 6\n\
             # HELP ptk_sampling_unit_len Sampling engine metric.\n\
             # TYPE ptk_sampling_unit_len histogram\n\
             ptk_sampling_unit_len_bucket{le=\"1\"} 1\n\
             ptk_sampling_unit_len_bucket{le=\"2\"} 3\n\
             ptk_sampling_unit_len_bucket{le=\"4\"} 4\n\
             ptk_sampling_unit_len_bucket{le=\"+Inf\"} 4\n\
             ptk_sampling_unit_len_sum 6\n\
             ptk_sampling_unit_len_count 4\n\
             # HELP ptk_sampling_unit_len_p50 Log-bucket upper-bound estimate of the p50.\n\
             # TYPE ptk_sampling_unit_len_p50 gauge\n\
             ptk_sampling_unit_len_p50 2\n\
             # HELP ptk_sampling_unit_len_p95 Log-bucket upper-bound estimate of the p95.\n\
             # TYPE ptk_sampling_unit_len_p95 gauge\n\
             ptk_sampling_unit_len_p95 3\n\
             # HELP ptk_sampling_unit_len_p99 Log-bucket upper-bound estimate of the p99.\n\
             # TYPE ptk_sampling_unit_len_p99 gauge\n\
             ptk_sampling_unit_len_p99 3\n\
             # HELP ptk_sampling_unit_len_max Largest observed value.\n\
             # TYPE ptk_sampling_unit_len_max gauge\n\
             ptk_sampling_unit_len_max 3\n"
        );
    }

    #[test]
    fn prometheus_rendering_includes_timings_as_counters() {
        let m = Metrics::new();
        m.record_nanos("engine.query", 1_234);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("ptk_engine_query_nanos_total 1234"), "{text}");
        assert!(text.contains("ptk_engine_query_spans_total 1"), "{text}");
    }

    #[test]
    fn phase_clock_exposes_accumulated_nanos() {
        let m = Metrics::new();
        let mut clock = PhaseClock::new(&m);
        clock.time(|| std::hint::black_box(17));
        // Live clock: some time accumulated (possibly 0 on a coarse
        // clock, but the accessor must agree with what flush records).
        let nanos = clock.nanos();
        clock.flush(&m, "phase");
        assert_eq!(
            m.snapshot().timings.get("phase").map(|t| t.total_nanos),
            Some(nanos)
        );
        let mut dead = PhaseClock::new(&Noop);
        dead.time(|| 1);
        assert_eq!(dead.nanos(), 0);
    }

    #[test]
    fn merge_into_empty_copies_and_handles_disjoint_histograms() {
        let b = Metrics::new();
        b.observe("h", 4.0);
        b.observe("h", 0.5);
        let mut merged = Snapshot::default();
        merged.merge(&b.snapshot());
        assert_eq!(merged, b.snapshot());

        let a = Metrics::new();
        a.observe("other", 1.0);
        let mut base = a.snapshot();
        base.merge(&b.snapshot());
        assert_eq!(base.histogram("h"), b.snapshot().histogram("h"));
        assert_eq!(base.histogram("other").map(|h| h.count), Some(1));
    }
}
