//! Structured query tracing: typed begin/end spans and instant events
//! flowing into a [`TraceSink`], with two exporters — Chrome trace-event
//! JSON ([`to_chrome_json`], loadable in Perfetto / `chrome://tracing`)
//! and a timing-free *logical-clock* rendering ([`render_logical`]) that
//! is a pure function of the query and therefore golden-testable across
//! thread counts.
//!
//! The two renderings sit on opposite sides of the workspace's
//! determinism boundary (DESIGN.md §11): every [`TraceEvent`] carries
//! both a wall-clock offset (`nanos`, relative to the tracer's epoch)
//! and a logical sequence number (`seq`, per query). The Chrome export
//! uses the former and is different on every run; the logical rendering
//! uses only `(query, seq)` order and the typed payloads, and is
//! bit-identical for a fixed query at every `PTK_THREADS` width.
//!
//! ```
//! use ptk_obs::{render_logical, RingSink, Stage, TraceEvent, Tracer};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(RingSink::new(64));
//! let tracer = Tracer::new(Arc::clone(&sink) as _, 0, 0);
//! tracer.begin(Stage::Query);
//! tracer.end(Stage::Query, ptk_obs::Payload::None);
//! let events: Vec<TraceEvent> = sink.events();
//! assert_eq!(events.len(), 2);
//! assert!(render_logical(&events).starts_with("q0 #0 B query"));
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::{push_json_f64, push_json_str};

/// A pipeline stage a span can cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The whole query: one scan of the ranked source.
    Query,
    /// Ranked retrieval — pulling tuples from the source.
    Retrieval,
    /// Rule-tuple compression and prefix reordering (§4.3.2).
    Reorder,
    /// The subset-probability dynamic program (Theorem 2).
    Dp,
    /// Pruning bound computation (§4.4 early-exit upper bound).
    Bound,
    /// Opening a run file and decoding its header/rule table.
    SourceOpen,
    /// A sampling run (§5): unit generation and progressive stopping.
    Sampling,
    /// One rule-closed segment of a partitioned deep scan: the per-segment
    /// subset-probability DP of the intra-query parallel path. Segment
    /// boundaries are a pure function of the rule layout, never of the
    /// pool width, so segment spans are safe for the logical rendering.
    Segment,
}

impl Stage {
    /// The stage's stable name, used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Query => "query",
            Stage::Retrieval => "retrieval",
            Stage::Reorder => "reorder",
            Stage::Dp => "dp",
            Stage::Bound => "bound",
            Stage::SourceOpen => "source-open",
            Stage::Sampling => "sampling",
            Stage::Segment => "segment",
        }
    }
}

/// The pruning rule behind a prune decision (Theorems 3–4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneRule {
    /// Theorem 3(1): membership probability below the largest failed one.
    Theorem3Membership,
    /// Theorem 3(2): a whole rule's mass cannot reach the threshold.
    Theorem3WholeRule,
    /// Theorem 4: a rule member below its rule's largest failed member.
    Theorem4RuleMember,
}

impl PruneRule {
    /// Stable rule label for renderings.
    pub fn name(self) -> &'static str {
        match self {
            PruneRule::Theorem3Membership => "T3-membership",
            PruneRule::Theorem3WholeRule => "T3-whole-rule",
            PruneRule::Theorem4RuleMember => "T4-rule-member",
        }
    }
}

/// The rule behind an early-stop decision (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Theorem 5: the answer mass already exceeds `k - p`.
    Theorem5TotalTopK,
    /// The periodic future-upper-bound check fell below the threshold.
    UpperBound,
}

impl StopRule {
    /// Stable rule label for renderings.
    pub fn name(self) -> &'static str {
        match self {
            StopRule::Theorem5TotalTopK => "T5-total-topk",
            StopRule::UpperBound => "upper-bound",
        }
    }
}

/// Stage-specific data attached to an [`EventKind::End`] event. All fields
/// are integers derived from the query itself, never from the clock, so
/// payloads are safe for the logical rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Payload {
    /// Nothing to report.
    #[default]
    None,
    /// End-of-scan roll-up for [`Stage::Query`].
    Scan {
        /// Tuples pulled from the ranked source.
        scanned: u64,
        /// Tuples whose `Pr^k` was actually computed.
        evaluated: u64,
        /// Tuples skipped by membership pruning.
        pruned_membership: u64,
        /// Tuples skipped by rule pruning.
        pruned_rule: u64,
        /// Tuples that passed the threshold.
        answers: u64,
    },
    /// Retrieval totals for [`Stage::Retrieval`].
    Retrieval {
        /// Tuples retrieved.
        tuples: u64,
    },
    /// Compression totals for [`Stage::Reorder`].
    Reorder {
        /// Rule-tuples in the compressed dominant set.
        rules_compressed: u64,
    },
    /// DP totals for [`Stage::Dp`].
    Dp {
        /// Subset-probability cells computed.
        cells: u64,
        /// Entries recomputed after prefix invalidation.
        entries: u64,
    },
    /// Bound-check totals for [`Stage::Bound`].
    Bound {
        /// Future-upper-bound evaluations performed.
        checks: u64,
    },
    /// Run-file open for [`Stage::SourceOpen`].
    Source {
        /// Tuple records the header promises.
        tuples: u64,
        /// Rules in the rule table.
        rules: u64,
    },
    /// Sampling-run totals for [`Stage::Sampling`].
    Sampling {
        /// Sample units drawn.
        units: u64,
        /// Ranked positions visited across all units.
        positions: u64,
    },
    /// Per-segment totals for [`Stage::Segment`].
    Segment {
        /// Segment index within the partitioned scan.
        index: u64,
        /// First global rank covered by the segment.
        start_rank: u64,
        /// Tuples evaluated in the segment.
        tuples: u64,
    },
}

/// A point event — a decision or notable moment inside a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// A tuple was pruned without evaluating its `Pr^k`.
    Prune {
        /// 0-based scan rank of the pruned tuple.
        rank: u64,
        /// Which theorem fired.
        rule: PruneRule,
    },
    /// The scan stopped early.
    Stop {
        /// Which stopping rule fired.
        rule: StopRule,
    },
    /// A tuple passed the probability threshold.
    Answer {
        /// 0-based scan rank of the answer tuple.
        rank: u64,
    },
    /// A progressive-sampling stability check completed.
    SampleCheckpoint {
        /// Units drawn so far.
        drawn: u64,
        /// Whether the estimates were stable within `phi`.
        stable: bool,
    },
    /// A buffered read refilled from a run file.
    FileRead {
        /// Bytes read.
        bytes: u64,
    },
    /// A snapshot source handed out a fresh scan cursor.
    SourceFork,
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin(Stage),
    /// A span closed, carrying its payload.
    End(Stage, Payload),
    /// A point event.
    Instant(Mark),
}

/// One trace event. `nanos` is the wall-clock offset from the tracer's
/// epoch and is excluded from the logical rendering; everything else is a
/// pure function of the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Query id — the plan index within a batch, 0 for single queries.
    pub query: u32,
    /// Worker id — the batch worker that ran this query, 0 when sequential.
    pub worker: u32,
    /// Logical sequence number, monotonic per query from 0.
    pub seq: u64,
    /// Wall-clock nanoseconds since the tracer's epoch (0 when the tracer
    /// was built disabled).
    pub nanos: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// A value of one named payload field, for exporters.
enum FieldVal {
    U64(u64),
    Str(&'static str),
    Bool(bool),
}

/// Calls `f` for every `(name, value)` field of the event's payload or
/// mark, in a fixed order. Both exporters render through this, so their
/// field sets can never drift apart.
fn for_each_field(kind: &EventKind, mut f: impl FnMut(&'static str, FieldVal)) {
    match kind {
        EventKind::Begin(_) => {}
        EventKind::End(_, payload) => match *payload {
            Payload::None => {}
            Payload::Scan {
                scanned,
                evaluated,
                pruned_membership,
                pruned_rule,
                answers,
            } => {
                f("scanned", FieldVal::U64(scanned));
                f("evaluated", FieldVal::U64(evaluated));
                f("pruned_membership", FieldVal::U64(pruned_membership));
                f("pruned_rule", FieldVal::U64(pruned_rule));
                f("answers", FieldVal::U64(answers));
            }
            Payload::Retrieval { tuples } => f("tuples", FieldVal::U64(tuples)),
            Payload::Reorder { rules_compressed } => {
                f("rules_compressed", FieldVal::U64(rules_compressed));
            }
            Payload::Dp { cells, entries } => {
                f("cells", FieldVal::U64(cells));
                f("entries", FieldVal::U64(entries));
            }
            Payload::Bound { checks } => f("checks", FieldVal::U64(checks)),
            Payload::Source { tuples, rules } => {
                f("tuples", FieldVal::U64(tuples));
                f("rules", FieldVal::U64(rules));
            }
            Payload::Sampling { units, positions } => {
                f("units", FieldVal::U64(units));
                f("positions", FieldVal::U64(positions));
            }
            Payload::Segment {
                index,
                start_rank,
                tuples,
            } => {
                f("index", FieldVal::U64(index));
                f("start_rank", FieldVal::U64(start_rank));
                f("tuples", FieldVal::U64(tuples));
            }
        },
        EventKind::Instant(mark) => match *mark {
            Mark::Prune { rank, rule } => {
                f("rank", FieldVal::U64(rank));
                f("rule", FieldVal::Str(rule.name()));
            }
            Mark::Stop { rule } => f("rule", FieldVal::Str(rule.name())),
            Mark::Answer { rank } => f("rank", FieldVal::U64(rank)),
            Mark::SampleCheckpoint { drawn, stable } => {
                f("drawn", FieldVal::U64(drawn));
                f("stable", FieldVal::Bool(stable));
            }
            Mark::FileRead { bytes } => f("bytes", FieldVal::U64(bytes)),
            Mark::SourceFork => {}
        },
    }
}

impl EventKind {
    /// The event's display name: the stage name for spans, a mark label
    /// for instants.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Begin(stage) | EventKind::End(stage, _) => stage.name(),
            EventKind::Instant(mark) => match mark {
                Mark::Prune { .. } => "prune",
                Mark::Stop { .. } => "stop",
                Mark::Answer { .. } => "answer",
                Mark::SampleCheckpoint { .. } => "sample-checkpoint",
                Mark::FileRead { .. } => "file-read",
                Mark::SourceFork => "source-fork",
            },
        }
    }
}

/// Sink for trace events. Like [`Recorder`](crate::Recorder), all methods
/// take `&self` and the default implementation drops everything —
/// instrumentation costs one cached boolean when nobody is listening.
pub trait TraceSink: Send + Sync {
    /// Whether anything is listening. [`Tracer`] caches this at
    /// construction, so a sink cannot toggle mid-query.
    fn enabled(&self) -> bool {
        false
    }

    /// Accepts one event.
    fn record(&self, event: TraceEvent) {
        let _ = event;
    }
}

/// The sink that drops every event ([`TraceSink::enabled`] is `false`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    depth: i64,
}

/// A bounded in-memory trace sink. When full, *new* events are dropped
/// (and counted) so the retained prefix keeps its span structure — a
/// truncated trace still renders, it just ends early.
///
/// In debug builds, dropping a `RingSink` whose recorded begin/end events
/// do not balance panics, so a missing `end` in instrumentation fails a
/// test loudly instead of silently producing a truncated trace. The
/// balance is tracked over *all* recorded events, including ones the ring
/// evicted, so capacity overflow never trips the guard by itself.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    inner: Mutex<RingState>,
}

impl RingSink {
    /// A sink retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            inner: Mutex::new(RingState::default()),
        }
    }

    /// The events recorded so far, in arrival order.
    ///
    /// # Panics
    /// Panics if a previous user of the sink panicked mid-record.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("trace sink poisoned");
        inner.events.iter().copied().collect()
    }

    /// How many events were dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace sink poisoned").dropped
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        match event.kind {
            EventKind::Begin(_) => inner.depth += 1,
            EventKind::End(_, _) => inner.depth -= 1,
            EventKind::Instant(_) => {}
        }
        if inner.events.len() >= self.capacity {
            inner.dropped += 1;
        } else {
            inner.events.push_back(event);
        }
    }
}

#[cfg(debug_assertions)]
impl Drop for RingSink {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        let depth = self.inner.get_mut().map(|s| s.depth).unwrap_or(0);
        assert!(
            depth == 0,
            "RingSink dropped with {depth} unbalanced span event(s): \
             every Begin needs a matching End"
        );
    }
}

/// A shared trace sink, mirroring [`SharedRecorder`](crate::SharedRecorder).
pub type SharedSink = Arc<dyn TraceSink>;

/// Emits events for one query into a [`TraceSink`], stamping each with the
/// query id, worker id, a per-query logical sequence number, and the
/// wall-clock offset from the tracer's epoch.
///
/// The enabled flag is cached at construction: when the sink is a
/// [`NoopSink`] no clock is ever read and `record` is never called, so a
/// `Tracer::disabled()` in a hot path costs one branch.
pub struct Tracer {
    sink: SharedSink,
    enabled: bool,
    query: u32,
    worker: u32,
    seq: AtomicU64,
    epoch: Option<Instant>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("query", &self.query)
            .field("worker", &self.worker)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer that emits nothing.
    pub fn disabled() -> Tracer {
        Tracer {
            sink: Arc::new(NoopSink),
            enabled: false,
            query: 0,
            worker: 0,
            seq: AtomicU64::new(0),
            epoch: None,
        }
    }

    /// A tracer for query `query` on worker `worker`, with its epoch at
    /// the moment of construction.
    pub fn new(sink: SharedSink, query: u32, worker: u32) -> Tracer {
        let enabled = sink.enabled();
        Tracer {
            sink,
            enabled,
            query,
            worker,
            seq: AtomicU64::new(0),
            epoch: enabled.then(Instant::now),
        }
    }

    /// Like [`Tracer::new`] with an explicit epoch — batch executors pass
    /// one shared epoch so every query's wall-clock offsets share a zero
    /// and the exported flame chart lines the workers up.
    pub fn with_epoch(sink: SharedSink, query: u32, worker: u32, epoch: Instant) -> Tracer {
        let enabled = sink.enabled();
        Tracer {
            sink,
            enabled,
            query,
            worker,
            seq: AtomicU64::new(0),
            epoch: enabled.then_some(epoch),
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the epoch (0 when disabled).
    pub fn elapsed_nanos(&self) -> u64 {
        self.epoch
            .map_or(0, |epoch| epoch.elapsed().as_nanos() as u64)
    }

    fn emit(&self, nanos: u64, kind: EventKind) {
        self.sink.record(TraceEvent {
            query: self.query,
            worker: self.worker,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            nanos,
            kind,
        });
    }

    /// Opens a span, returning its begin offset in nanoseconds.
    pub fn begin(&self, stage: Stage) -> u64 {
        if !self.enabled {
            return 0;
        }
        let nanos = self.elapsed_nanos();
        self.emit(nanos, EventKind::Begin(stage));
        nanos
    }

    /// Closes a span with its payload.
    pub fn end(&self, stage: Stage, payload: Payload) {
        if !self.enabled {
            return;
        }
        let nanos = self.elapsed_nanos();
        self.emit(nanos, EventKind::End(stage, payload));
    }

    /// Records a complete span at explicit offsets. The executor uses this
    /// to lay its accumulated per-phase totals out as sequential synthetic
    /// spans after the scan — honest aggregates, not per-iteration timings.
    pub fn span_at(&self, stage: Stage, start_nanos: u64, end_nanos: u64, payload: Payload) {
        if !self.enabled {
            return;
        }
        self.emit(start_nanos, EventKind::Begin(stage));
        self.emit(end_nanos.max(start_nanos), EventKind::End(stage, payload));
    }

    /// Records a point event.
    pub fn instant(&self, mark: Mark) {
        if !self.enabled {
            return;
        }
        let nanos = self.elapsed_nanos();
        self.emit(nanos, EventKind::Instant(mark));
    }
}

/// Renders events as Chrome trace-event JSON (the `traceEvents` array
/// format): load the output in Perfetto or `chrome://tracing`. Queries
/// map to processes (`pid`), workers to threads (`tid`), and payload
/// fields to `args`. Timestamps are microseconds from the tracer epoch.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match event.kind {
            EventKind::Begin(_) => "B",
            EventKind::End(_, _) => "E",
            EventKind::Instant(_) => "i",
        };
        out.push_str("{\"name\":");
        push_json_str(&mut out, event.kind.name());
        let _ = write!(out, ",\"cat\":\"ptk\",\"ph\":\"{ph}\",\"ts\":");
        push_json_f64(&mut out, event.nanos as f64 / 1_000.0);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", event.query, event.worker);
        if matches!(event.kind, EventKind::Instant(_)) {
            out.push_str(",\"s\":\"t\"");
        }
        let _ = write!(out, ",\"args\":{{\"seq\":{}", event.seq);
        for_each_field(&event.kind, |name, value| {
            out.push(',');
            push_json_str(&mut out, name);
            out.push(':');
            match value {
                FieldVal::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldVal::Str(s) => push_json_str(&mut out, s),
                FieldVal::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        });
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders events as the timing-free *logical-clock* trace: one line per
/// event, ordered by `(query, seq)`, carrying only deterministic data —
/// no worker ids, no wall clock. For a fixed query this rendering is
/// bit-identical at every thread count (pinned in the batch-parity and
/// determinism test suites).
pub fn render_logical(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.query, e.seq));
    let mut out = String::with_capacity(ordered.len() * 48);
    for event in ordered {
        let tag = match event.kind {
            EventKind::Begin(_) => "B",
            EventKind::End(_, _) => "E",
            EventKind::Instant(_) => "i",
        };
        let _ = write!(
            out,
            "q{} #{} {tag} {}",
            event.query,
            event.seq,
            event.kind.name()
        );
        for_each_field(&event.kind, |name, value| {
            let _ = match value {
                FieldVal::U64(v) => write!(out, " {name}={v}"),
                FieldVal::Str(s) => write!(out, " {name}={s}"),
                FieldVal::Bool(b) => write!(out, " {name}={b}"),
            };
        });
        out.push('\n');
    }
    out
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in the `traceEvents` array.
    pub events: usize,
    /// `ph: "B"` events.
    pub begins: usize,
    /// `ph: "E"` events.
    pub ends: usize,
    /// `ph: "i"` events.
    pub instants: usize,
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the structural trace checker. Only what the
// checker needs — the workspace is zero-dependency, so CI validates the
// emitted trace with this instead of a JSON crate.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn new(text: &'a str) -> JsonReader<'a> {
        JsonReader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(&byte) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("malformed UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn document(&mut self) -> Result<Json, String> {
        let value = self.value()?;
        if self.peek().is_some() {
            return Err(self.error("trailing content after document"));
        }
        Ok(value)
    }
}

/// Structurally validates Chrome trace-event JSON as emitted by
/// [`to_chrome_json`] (and accepted by Perfetto): a `traceEvents` array
/// whose entries carry `name`/`ph`/`ts`/`pid`/`tid` with the right types,
/// `ph` limited to `B`/`E`/`i`, and begin/end events balanced per
/// `(pid, tid)` lane. Zero-dependency by design — this is the checker CI
/// runs against a freshly traced query.
///
/// # Errors
/// Returns a description of the first structural violation.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let doc = JsonReader::new(json).document()?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("\"traceEvents\" is not an array".into()),
        None => return Err("missing top-level \"traceEvents\" array".into()),
    };
    let mut check = TraceCheck {
        events: events.len(),
        begins: 0,
        ends: 0,
        instants: 0,
    };
    let mut depths: Vec<((u64, u64), i64)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let context = |field: &str| format!("event {i}: missing or mistyped \"{field}\"");
        match event.get("name") {
            Some(Json::Str(_)) => {}
            _ => return Err(context("name")),
        }
        let lane = match (event.get("pid"), event.get("tid")) {
            (Some(Json::Num(pid)), Some(Json::Num(tid))) => (*pid as u64, *tid as u64),
            (Some(Json::Num(_)), _) => return Err(context("tid")),
            _ => return Err(context("pid")),
        };
        match event.get("ts") {
            Some(Json::Num(ts)) if ts.is_finite() && *ts >= 0.0 => {}
            _ => return Err(context("ts")),
        }
        let ph = match event.get("ph") {
            Some(Json::Str(ph)) => ph.as_str(),
            _ => return Err(context("ph")),
        };
        let depth = match depths.iter_mut().find(|(l, _)| *l == lane) {
            Some((_, depth)) => depth,
            None => {
                depths.push((lane, 0));
                &mut depths.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                check.begins += 1;
                *depth += 1;
            }
            "E" => {
                check.ends += 1;
                *depth -= 1;
                if *depth < 0 {
                    return Err(format!(
                        "event {i}: \"E\" without a matching \"B\" on pid {} tid {}",
                        lane.0, lane.1
                    ));
                }
            }
            "i" => check.instants += 1,
            other => return Err(format!("event {i}: unknown ph \"{other}\"")),
        }
    }
    for ((pid, tid), depth) in depths {
        if depth != 0 {
            return Err(format!(
                "pid {pid} tid {tid}: {depth} unbalanced \"B\" event(s)"
            ));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_and_tracer() -> (Arc<RingSink>, Tracer) {
        let sink = Arc::new(RingSink::new(1024));
        let tracer = Tracer::new(Arc::clone(&sink) as SharedSink, 0, 0);
        (sink, tracer)
    }

    #[test]
    fn tracer_stamps_query_worker_and_sequence() {
        let sink = Arc::new(RingSink::new(16));
        let tracer = Tracer::new(Arc::clone(&sink) as SharedSink, 3, 1);
        tracer.begin(Stage::Query);
        tracer.instant(Mark::Answer { rank: 0 });
        tracer.end(Stage::Query, Payload::None);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.query, 3);
            assert_eq!(e.worker, 1);
            assert_eq!(e.seq, i as u64);
        }
        assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_reads_no_clock() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.begin(Stage::Query);
        tracer.instant(Mark::SourceFork);
        tracer.end(Stage::Query, Payload::None);
        assert_eq!(tracer.elapsed_nanos(), 0);
    }

    #[test]
    fn ring_sink_drops_newest_when_full_and_counts() {
        let sink = Arc::new(RingSink::new(2));
        let tracer = Tracer::new(Arc::clone(&sink) as SharedSink, 0, 0);
        tracer.begin(Stage::Query);
        tracer.instant(Mark::SourceFork);
        tracer.instant(Mark::Answer { rank: 1 });
        tracer.end(Stage::Query, Payload::None);
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped(), 2);
        // The guard counts all events including evicted ones, so the
        // balanced stream above must not trip it at drop.
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unbalanced span")]
    fn unbalanced_span_panics_at_drop_in_debug_builds() {
        let sink = Arc::new(RingSink::new(16));
        let tracer = Tracer::new(Arc::clone(&sink) as SharedSink, 0, 0);
        tracer.begin(Stage::Query);
        drop(tracer);
        drop(sink); // begin without end → debug guard fires
    }

    #[test]
    fn chrome_export_is_valid_and_balanced() {
        let (sink, tracer) = sink_and_tracer();
        tracer.begin(Stage::Query);
        tracer.instant(Mark::Prune {
            rank: 4,
            rule: PruneRule::Theorem3Membership,
        });
        tracer.span_at(
            Stage::Dp,
            10,
            20,
            Payload::Dp {
                cells: 7,
                entries: 2,
            },
        );
        tracer.end(
            Stage::Query,
            Payload::Scan {
                scanned: 6,
                evaluated: 5,
                pruned_membership: 1,
                pruned_rule: 0,
                answers: 3,
            },
        );
        let json = to_chrome_json(&sink.events());
        let check = validate_chrome_trace(&json).expect("emitted trace must validate");
        assert_eq!(check.events, 5);
        assert_eq!(check.begins, 2);
        assert_eq!(check.ends, 2);
        assert_eq!(check.instants, 1);
        assert!(json.contains("\"rule\":\"T3-membership\""), "{json}");
        assert!(json.contains("\"scanned\":6"), "{json}");
        assert!(json.contains("\"s\":\"t\""), "{json}");
    }

    #[test]
    fn logical_rendering_is_timing_free_and_order_normalized() {
        let sink = Arc::new(RingSink::new(64));
        let q1 = Tracer::new(Arc::clone(&sink) as SharedSink, 1, 7);
        let q0 = Tracer::new(Arc::clone(&sink) as SharedSink, 0, 2);
        // Interleave queries out of order; the rendering sorts by (q, seq).
        q1.begin(Stage::Query);
        q0.begin(Stage::Query);
        q1.end(Stage::Query, Payload::None);
        q0.end(Stage::Query, Payload::None);
        let text = render_logical(&sink.events());
        assert_eq!(
            text,
            "q0 #0 B query\nq0 #1 E query\nq1 #0 B query\nq1 #1 E query\n"
        );
        // Worker ids and wall-clock never leak into the logical rendering.
        assert!(!text.contains('7'));
        assert!(!text.contains("nanos"));
    }

    #[test]
    fn logical_rendering_carries_decision_payloads() {
        let (sink, tracer) = sink_and_tracer();
        tracer.begin(Stage::Query);
        tracer.instant(Mark::Stop {
            rule: StopRule::UpperBound,
        });
        tracer.end(Stage::Query, Payload::None);
        let text = render_logical(&sink.events());
        assert!(text.contains("i stop rule=upper-bound"), "{text}");
    }

    #[test]
    fn validator_rejects_structural_violations() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // Missing tid.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"B\",\"ts\":0,\"pid\":0}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("tid"));
        // Unknown phase.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("unknown ph"));
        // End before begin.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"E\",\"ts\":0,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("matching"));
        // Unbalanced at the end.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("unbalanced"));
        // Balance is per lane, not global.
        let good = "{\"traceEvents\":[\
            {\"name\":\"q\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":0},\
            {\"name\":\"q\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0},\
            {\"name\":\"q\",\"ph\":\"E\",\"ts\":1,\"pid\":0,\"tid\":0},\
            {\"name\":\"q\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":0}]}";
        assert_eq!(validate_chrome_trace(good).unwrap().begins, 2);
        let crossed = "{\"traceEvents\":[\
            {\"name\":\"q\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":0},\
            {\"name\":\"q\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":0}]}";
        assert!(validate_chrome_trace(crossed).is_err());
    }

    #[test]
    fn json_reader_handles_strings_numbers_and_nesting() {
        let doc = JsonReader::new(
            "{\"a\":[1,2.5,-3e2],\"b\":\"x\\\"y\\u0041\",\"c\":null,\"d\":true,\"e\":{}}",
        )
        .document()
        .unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0)
            ]))
        );
        assert_eq!(doc.get("b"), Some(&Json::Str("x\"yA".into())));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert!(JsonReader::new("{\"a\":1} trailing").document().is_err());
        assert!(JsonReader::new("[1,]").document().is_err());
    }

    #[test]
    fn span_at_clamps_inverted_ranges() {
        let (sink, tracer) = sink_and_tracer();
        tracer.span_at(Stage::Bound, 50, 10, Payload::Bound { checks: 1 });
        let events = sink.events();
        assert_eq!(events[0].nanos, 50);
        assert_eq!(events[1].nanos, 50, "end must never precede begin");
    }
}
