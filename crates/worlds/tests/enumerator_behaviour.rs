//! Behavioural tests of the world enumerator: laziness, budgets, and
//! agreement with the table-level counting formula.

use ptk_core::{RankedView, Ranking, TopKQuery, UncertainTableBuilder};
use ptk_worlds::{try_enumerate, world_count, WorldEnumerator};

#[test]
fn enumerator_is_lazy() {
    // 2^40 worlds: collecting would be hopeless, but taking a few is fine.
    let probs = vec![0.5; 40];
    let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
    let first: Vec<_> = WorldEnumerator::new(&view).take(5).collect();
    assert_eq!(first.len(), 5);
    for w in &first {
        assert!((w.prob - 0.5f64.powi(40)).abs() < 1e-25);
    }
}

#[test]
fn view_count_matches_table_formula() {
    let mut b = UncertainTableBuilder::single_column();
    let mut ids = Vec::new();
    for i in 0..6 {
        ids.push(b.push_scored(0.2, (10 - i) as f64).unwrap());
    }
    b.exclusive(&[ids[0], ids[2]]).unwrap();
    b.exclusive(&[ids[1], ids[3], ids[5]]).unwrap();
    let table = b.finish().unwrap();
    let view = RankedView::build(&table, &TopKQuery::top(1, Ranking::descending(0))).unwrap();
    assert_eq!(world_count(&view), table.world_count());
}

#[test]
fn budget_boundary_is_inclusive() {
    let view = RankedView::from_ranked_probs(&[0.5, 0.5, 0.5], &[]).unwrap();
    assert_eq!(world_count(&view), 8.0);
    assert!(try_enumerate(&view, 8).is_ok());
    assert!(try_enumerate(&view, 7).is_err());
}

#[test]
fn probabilities_and_members_are_consistent() {
    // Every world's probability must equal the product implied by its
    // membership pattern.
    let view = RankedView::from_ranked_probs(&[0.3, 0.6, 0.3], &[vec![1, 2]]).unwrap();
    let worlds = try_enumerate(&view, 100).unwrap();
    assert_eq!(worlds.len(), 2 * 3); // independent {in,out} x rule {m1, m2, none}
    for w in &worlds {
        let indep = if w.contains(0) { 0.3 } else { 0.7 };
        let rule = if w.contains(1) {
            0.6
        } else if w.contains(2) {
            0.3
        } else {
            1.0 - 0.9
        };
        assert!(
            (w.prob - indep * rule).abs() < 1e-12,
            "world {:?}: {} vs {}",
            w.members,
            w.prob,
            indep * rule
        );
    }
}
