//! Exhaustive enumeration of possible worlds.

use ptk_core::RankedView;

use crate::{PossibleWorld, TooManyWorlds};

/// Probabilities within this distance of 1 are treated as certain, so that
/// float drift in rule masses never produces tiny negative "no member"
/// branches.
const CERTAIN_EPS: f64 = 1e-12;

/// Default world budget for [`enumerate`].
const DEFAULT_BUDGET: u64 = 4_000_000;

/// One independent stochastic choice of the generative process.
#[derive(Debug, Clone)]
enum Choice {
    /// An independent tuple at `pos`: present with probability `prob`.
    Independent { pos: usize, prob: f64 },
    /// A projected rule: `options[i]` is (member position, probability);
    /// `none_prob` is the probability that no member exists.
    Rule {
        options: Vec<(usize, f64)>,
        none_prob: f64,
    },
}

impl Choice {
    /// Number of alternatives this choice ranges over.
    fn arity(&self) -> usize {
        match self {
            Choice::Independent { prob, .. } => {
                if *prob >= 1.0 - CERTAIN_EPS {
                    1
                } else {
                    2
                }
            }
            Choice::Rule { options, none_prob } => {
                options.len() + usize::from(*none_prob > CERTAIN_EPS)
            }
        }
    }

    /// The `i`-th alternative: the position made present (if any) and its
    /// probability.
    fn option(&self, i: usize) -> (Option<usize>, f64) {
        match self {
            Choice::Independent { pos, prob } => match i {
                0 => (Some(*pos), *prob),
                1 => (None, 1.0 - *prob),
                _ => unreachable!("independent choices have arity <= 2"),
            },
            Choice::Rule { options, none_prob } => {
                if i < options.len() {
                    (Some(options[i].0), options[i].1)
                } else {
                    (None, *none_prob)
                }
            }
        }
    }
}

/// Iterator over every possible world of a ranked view, in odometer order.
///
/// Worlds are produced with their exact probability (Eq. 1); the
/// probabilities of all produced worlds sum to 1 up to float error.
#[derive(Debug)]
pub struct WorldEnumerator {
    choices: Vec<Choice>,
    /// Current odometer digits; `None` once exhausted.
    digits: Option<Vec<usize>>,
}

impl WorldEnumerator {
    /// Creates an enumerator over the worlds of `view`.
    pub fn new(view: &RankedView) -> WorldEnumerator {
        let mut choices = Vec::new();
        for (pos, t) in view.tuples().iter().enumerate() {
            if t.rule.is_none() {
                choices.push(Choice::Independent { pos, prob: t.prob });
            }
        }
        for rule in view.rules() {
            let options: Vec<(usize, f64)> =
                rule.members.iter().map(|&m| (m, view.prob(m))).collect();
            let none_prob = (1.0 - rule.mass).max(0.0);
            choices.push(Choice::Rule { options, none_prob });
        }
        let digits = Some(vec![0; choices.len()]);
        WorldEnumerator { choices, digits }
    }

    /// The exact number of worlds this enumerator will produce.
    pub fn num_worlds(&self) -> f64 {
        self.choices.iter().map(|c| c.arity() as f64).product()
    }
}

impl Iterator for WorldEnumerator {
    type Item = PossibleWorld;

    fn next(&mut self) -> Option<PossibleWorld> {
        let digits = self.digits.as_mut()?;
        // Materialize the current world.
        let mut members = Vec::new();
        let mut prob = 1.0;
        for (choice, &digit) in self.choices.iter().zip(digits.iter()) {
            let (pos, p) = choice.option(digit);
            if let Some(pos) = pos {
                members.push(pos);
            }
            prob *= p;
        }
        members.sort_unstable();
        // Advance the odometer.
        let mut exhausted = true;
        for (i, choice) in self.choices.iter().enumerate().rev() {
            if digits[i] + 1 < choice.arity() {
                digits[i] += 1;
                for d in digits[i + 1..].iter_mut() {
                    *d = 0;
                }
                exhausted = false;
                break;
            }
        }
        if exhausted {
            self.digits = None;
        }
        Some(PossibleWorld { members, prob })
    }
}

/// The number of possible worlds of `view` (the paper's `|W|` formula, over
/// the projected rules and independent tuples of the view).
pub fn world_count(view: &RankedView) -> f64 {
    WorldEnumerator::new(view).num_worlds()
}

/// Enumerates every possible world, within a budget of `max_worlds`.
///
/// # Errors
/// Returns [`TooManyWorlds`] when the view has more worlds than the budget —
/// the caller should fall back to `ptk-engine` or `ptk-sampling`.
pub fn try_enumerate(
    view: &RankedView,
    max_worlds: u64,
) -> Result<Vec<PossibleWorld>, TooManyWorlds> {
    let e = WorldEnumerator::new(view);
    let count = e.num_worlds();
    if count > max_worlds as f64 {
        return Err(TooManyWorlds {
            worlds: count,
            budget: max_worlds,
        });
    }
    Ok(e.collect())
}

/// Enumerates every possible world with the default budget (4M worlds).
///
/// # Errors
/// Returns [`TooManyWorlds`] when the view is too large to enumerate.
pub fn enumerate(view: &RankedView) -> Result<Vec<PossibleWorld>, TooManyWorlds> {
    try_enumerate(view, DEFAULT_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Panda example (Table 1) in ranked order:
    /// pos 0 = R1 (0.3), 1 = R2 (0.4), 2 = R5 (0.8), 3 = R3 (0.5),
    /// 4 = R4 (1.0), 5 = R6 (0.2); rules R2⊕R3 = {1,3}, R5⊕R6 = {2,5}.
    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn panda_has_twelve_worlds() {
        let view = panda();
        assert_eq!(world_count(&view), 12.0);
        let worlds = enumerate(&view).unwrap();
        assert_eq!(worlds.len(), 12);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn panda_world_probabilities_match_table_2() {
        let view = panda();
        let worlds = enumerate(&view).unwrap();
        // Table 2: W1 = {R1, R2, R4, R5} with probability 0.096. In ranked
        // positions that is {0, 1, 2, 4}.
        let find = |members: &[usize]| {
            worlds
                .iter()
                .find(|w| w.members == members)
                .unwrap_or_else(|| panic!("world {members:?} missing"))
                .prob
        };
        assert!((find(&[0, 1, 2, 4]) - 0.096).abs() < 1e-12); // W1
        assert!((find(&[0, 1, 4, 5]) - 0.024).abs() < 1e-12); // W2
        assert!((find(&[0, 2, 3, 4]) - 0.12).abs() < 1e-12); // W3
        assert!((find(&[0, 3, 4, 5]) - 0.03).abs() < 1e-12); // W4
        assert!((find(&[0, 2, 4]) - 0.024).abs() < 1e-12); // W5
        assert!((find(&[0, 4, 5]) - 0.006).abs() < 1e-12); // W6
        assert!((find(&[1, 2, 4]) - 0.224).abs() < 1e-12); // W7
        assert!((find(&[1, 4, 5]) - 0.056).abs() < 1e-12); // W8
        assert!((find(&[2, 3, 4]) - 0.28).abs() < 1e-12); // W9
        assert!((find(&[3, 4, 5]) - 0.07).abs() < 1e-12); // W10
        assert!((find(&[2, 4]) - 0.056).abs() < 1e-12); // W11
        assert!((find(&[4, 5]) - 0.014).abs() < 1e-12); // W12
    }

    #[test]
    fn certain_rule_always_produces_a_member() {
        // Rule of mass exactly 1: no "none" branch.
        let view = RankedView::from_ranked_probs(&[0.6, 0.4], &[vec![0, 1]]).unwrap();
        let worlds = enumerate(&view).unwrap();
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn certain_tuple_always_present() {
        let view = RankedView::from_ranked_probs(&[1.0, 0.5], &[]).unwrap();
        let worlds = enumerate(&view).unwrap();
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().all(|w| w.contains(0)));
    }

    #[test]
    fn empty_view_has_one_empty_world() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let worlds = enumerate(&view).unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(worlds[0].is_empty());
        assert_eq!(worlds[0].prob, 1.0);
    }

    #[test]
    fn budget_is_enforced() {
        let probs = vec![0.5; 30];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let err = try_enumerate(&view, 1000).unwrap_err();
        assert_eq!(err.worlds, 2f64.powi(30));
        assert_eq!(err.budget, 1000);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn worlds_are_distinct() {
        let view =
            RankedView::from_ranked_probs(&[0.5, 0.5, 0.5, 0.7, 0.2], &[vec![1, 4]]).unwrap();
        let worlds = enumerate(&view).unwrap();
        let mut seen = std::collections::HashSet::new();
        for w in &worlds {
            assert!(
                seen.insert(w.members.clone()),
                "duplicate world {:?}",
                w.members
            );
        }
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rule_members_are_exclusive_in_every_world() {
        let view = RankedView::from_ranked_probs(&[0.3, 0.3, 0.3, 0.5], &[vec![0, 1, 2]]).unwrap();
        for w in enumerate(&view).unwrap() {
            let in_rule = w.members.iter().filter(|&&m| m <= 2).count();
            assert!(in_rule <= 1);
        }
    }
}
