//! A single possible world.

/// One possible world of a [`RankedView`](ptk_core::RankedView): the set of
/// tuples (as ranked positions) that exist in it, plus its existence
/// probability `Pr(W)` per Eq. 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleWorld {
    /// Ranked positions of the tuples present in this world, ascending —
    /// i.e. already in ranking order, so the top-k of the world is simply
    /// `members[..k.min(len)]`.
    pub members: Vec<usize>,
    /// Existence probability `Pr(W)`.
    pub prob: f64,
}

impl PossibleWorld {
    /// The top-k positions of this world: its first `min(k, |W|)` members.
    pub fn top_k(&self, k: usize) -> &[usize] {
        &self.members[..k.min(self.members.len())]
    }

    /// Whether the tuple at ranked position `pos` exists in this world.
    pub fn contains(&self, pos: usize) -> bool {
        self.members.binary_search(&pos).is_ok()
    }

    /// Number of tuples in the world.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_truncates() {
        let w = PossibleWorld {
            members: vec![0, 2, 5],
            prob: 0.1,
        };
        assert_eq!(w.top_k(2), &[0, 2]);
        assert_eq!(w.top_k(10), &[0, 2, 5]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn contains_uses_sorted_members() {
        let w = PossibleWorld {
            members: vec![1, 4, 7],
            prob: 0.2,
        };
        assert!(w.contains(4));
        assert!(!w.contains(3));
    }

    #[test]
    fn empty_world() {
        let w = PossibleWorld {
            members: vec![],
            prob: 0.05,
        };
        assert!(w.is_empty());
        assert_eq!(w.top_k(3), &[] as &[usize]);
    }
}
