//! # `ptk-worlds` — possible-world semantics
//!
//! Enumeration of the possible worlds of an uncertain table and *naive* exact
//! query evaluation by iterating over all of them (Eq. 1–2 of the paper).
//!
//! The number of possible worlds is exponential in the table size, so these
//! evaluators are only feasible on small inputs — which is exactly the
//! paper's motivation for the efficient algorithms in `ptk-engine` and
//! `ptk-sampling`. In this workspace the enumerators serve as the
//! **ground-truth oracle**: every other engine is tested against them.
//!
//! ```
//! use ptk_core::RankedView;
//! use ptk_worlds::{enumerate, naive};
//!
//! // Three independent tuples, ranked: probabilities 0.5, 0.8, 1.0.
//! let view = RankedView::from_ranked_probs(&[0.5, 0.8, 1.0], &[]).unwrap();
//! let worlds = enumerate(&view).unwrap();
//! let total: f64 = worlds.iter().map(|w| w.prob).sum();
//! assert!((total - 1.0).abs() < 1e-12);
//!
//! let pr2 = naive::topk_probabilities(&view, 2).unwrap();
//! assert!((pr2[0] - 0.5).abs() < 1e-12);       // always top-2 when present
//! assert!((pr2[1] - 0.8).abs() < 1e-12);
//! assert!((pr2[2] - (1.0 - 0.5 * 0.8)).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod enumerator;
pub mod naive;
mod world;

pub use enumerator::{enumerate, try_enumerate, world_count, WorldEnumerator};
pub use world::PossibleWorld;

/// Error raised when enumeration would exceed the configured world budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TooManyWorlds {
    /// The number of possible worlds the view has.
    pub worlds: f64,
    /// The configured budget.
    pub budget: u64,
}

impl std::fmt::Display for TooManyWorlds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "enumeration of {} possible worlds exceeds the budget of {}; \
             use ptk-engine or ptk-sampling instead",
            self.worlds, self.budget
        )
    }
}

impl std::error::Error for TooManyWorlds {}
