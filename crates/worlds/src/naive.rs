//! Naive exact query evaluation by possible-world enumeration.
//!
//! These functions apply the query to every possible world (Eq. 2 of the
//! paper, and the corresponding definitions of U-TopK / U-KRanks from
//! Soliman et al.). They are exponential in the input size and exist as the
//! ground-truth oracle for the efficient engines.

use ptk_core::RankedView;

use crate::{enumerate, TooManyWorlds};

/// Exact top-k probability `Pr^k(t)` of every tuple, indexed by ranked
/// position, computed by enumerating all possible worlds.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn topk_probabilities(view: &RankedView, k: usize) -> Result<Vec<f64>, TooManyWorlds> {
    let mut pr = vec![0.0; view.len()];
    for world in enumerate(view)? {
        for &pos in world.top_k(k) {
            pr[pos] += world.prob;
        }
    }
    Ok(pr)
}

/// Exact position probabilities: `pr[pos][j]` is the probability that the
/// tuple at ranked position `pos` is ranked *exactly* `j+1`-th (0-based `j`)
/// in a possible world, for `j < k`.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn position_probabilities(view: &RankedView, k: usize) -> Result<Vec<Vec<f64>>, TooManyWorlds> {
    let mut pr = vec![vec![0.0; k]; view.len()];
    for world in enumerate(view)? {
        for (j, &pos) in world.top_k(k).iter().enumerate() {
            pr[pos][j] += world.prob;
        }
    }
    Ok(pr)
}

/// The exact PT-k answer: ranked positions whose top-k probability is at
/// least `threshold`, in ranking order.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn ptk_answer(
    view: &RankedView,
    k: usize,
    threshold: f64,
) -> Result<Vec<usize>, TooManyWorlds> {
    let pr = topk_probabilities(view, k)?;
    Ok((0..view.len()).filter(|&i| pr[i] >= threshold).collect())
}

/// The exact U-TopK answer: the length-`k` (or shorter, if no world has `k`
/// tuples with positive probability) vector of ranked positions that is the
/// top-k list of possible worlds with the highest total probability, plus
/// that probability.
///
/// Ties between vectors are broken toward the lexicographically smallest
/// vector so the result is deterministic.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn utopk(view: &RankedView, k: usize) -> Result<(Vec<usize>, f64), TooManyWorlds> {
    use std::collections::HashMap;
    let mut by_vector: HashMap<Vec<usize>, f64> = HashMap::new();
    for world in enumerate(view)? {
        *by_vector.entry(world.top_k(k).to_vec()).or_insert(0.0) += world.prob;
    }
    let mut best: Option<(Vec<usize>, f64)> = None;
    for (vector, prob) in by_vector {
        let better = match &best {
            None => true,
            Some((bv, bp)) => prob > *bp + 1e-15 || ((prob - bp).abs() <= 1e-15 && vector < *bv),
        };
        if better {
            best = Some((vector, prob));
        }
    }
    Ok(best.unwrap_or((Vec::new(), 0.0)))
}

/// The exact U-KRanks answer: for each rank `j ∈ 1..=k`, the ranked position
/// with the highest probability of being ranked exactly `j`-th, plus that
/// probability. Entry `j-1` of the result corresponds to rank `j`.
///
/// Ties are broken toward the higher-ranked (smaller) position.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn ukranks(view: &RankedView, k: usize) -> Result<Vec<(usize, f64)>, TooManyWorlds> {
    let pr = position_probabilities(view, k)?;
    let mut answer = Vec::with_capacity(k);
    #[allow(clippy::needless_range_loop)] // paired indices into pr and view
    for j in 0..k {
        let mut best_pos = 0;
        let mut best_prob = f64::NEG_INFINITY;
        for pos in 0..view.len() {
            if pr[pos][j] > best_prob + 1e-15 {
                best_pos = pos;
                best_prob = pr[pos][j];
            }
        }
        answer.push((best_pos, best_prob.max(0.0)));
    }
    Ok(answer)
}

/// The exact Global-Topk answer: the `k` ranked positions with the highest
/// top-k probability `Pr^k`, in descending `Pr^k` order, each with its
/// probability.
///
/// Ties are broken toward the higher-ranked (smaller) position.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn global_topk(view: &RankedView, k: usize) -> Result<Vec<(usize, f64)>, TooManyWorlds> {
    let pr = topk_probabilities(view, k)?;
    let mut order: Vec<usize> = (0..view.len()).collect();
    order.sort_by(|&a, &b| pr[b].total_cmp(&pr[a]).then(a.cmp(&b)));
    order.truncate(k);
    Ok(order.into_iter().map(|pos| (pos, pr[pos])).collect())
}

/// The exact expected rank of every tuple (indexed by ranked position), by
/// enumeration: in a world containing the tuple its rank is the (0-based)
/// number of tuples above it; in a world missing the tuple its rank is the
/// world's size `|W|` (Cormode et al.'s bottom-rank convention).
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn expected_ranks(view: &RankedView) -> Result<Vec<f64>, TooManyWorlds> {
    let mut out = vec![0.0; view.len()];
    for world in enumerate(view)? {
        // `world.members` holds present positions in ranking order.
        let mut present = vec![false; view.len()];
        for (rank, &pos) in world.members.iter().enumerate() {
            present[pos] = true;
            out[pos] += world.prob * rank as f64;
        }
        let size = world.members.len() as f64;
        for (pos, was_present) in present.iter().enumerate() {
            if !was_present {
                out[pos] += world.prob * size;
            }
        }
    }
    Ok(out)
}

/// The exact expected-rank top-k answer: the `k` ranked positions with the
/// smallest expected rank (see [`expected_ranks`]), ascending, each with
/// its expected rank. Ties are broken toward the higher-ranked (smaller)
/// position.
///
/// # Errors
/// Returns [`TooManyWorlds`] if the view exceeds the enumeration budget.
pub fn expected_rank_topk(view: &RankedView, k: usize) -> Result<Vec<(usize, f64)>, TooManyWorlds> {
    let ranks = expected_ranks(view)?;
    let mut order: Vec<usize> = (0..view.len()).collect();
    order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then(a.cmp(&b)));
    order.truncate(k);
    Ok(order.into_iter().map(|pos| (pos, ranks[pos])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Panda example (Table 1) in ranked order; see Table 2/3 of the paper.
    /// Positions: 0=R1, 1=R2, 2=R5, 3=R3, 4=R4, 5=R6.
    fn panda() -> RankedView {
        RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
            .unwrap()
    }

    #[test]
    fn panda_top2_probabilities_match_table_3() {
        let pr = topk_probabilities(&panda(), 2).unwrap();
        // Table 3: R1 0.3, R2 0.4, R3 0.38, R4 0.202, R5 0.704, R6 0.014.
        assert!((pr[0] - 0.3).abs() < 1e-12, "R1: {}", pr[0]);
        assert!((pr[1] - 0.4).abs() < 1e-12, "R2: {}", pr[1]);
        assert!((pr[3] - 0.38).abs() < 1e-12, "R3: {}", pr[3]);
        assert!((pr[4] - 0.202).abs() < 1e-12, "R4: {}", pr[4]);
        assert!((pr[2] - 0.704).abs() < 1e-12, "R5: {}", pr[2]);
        assert!((pr[5] - 0.014).abs() < 1e-12, "R6: {}", pr[5]);
    }

    #[test]
    fn panda_ptk_answer_at_035_matches_example_1() {
        // Example 1: with p = 0.35, {R2, R3, R5} is returned.
        let ans = ptk_answer(&panda(), 2, 0.35).unwrap();
        assert_eq!(ans, vec![1, 2, 3]); // positions of R2, R5, R3
    }

    #[test]
    fn panda_utopk_matches_section_1() {
        // Section 1: U-TopK on Table 1 returns <R5, R3>. Ranked positions:
        // R5 = 2, R3 = 3. As a top-2 *set in ranking order* that is [2, 3],
        // from world W9 = {R3, R4, R5} with probability 0.28.
        let (vector, prob) = utopk(&panda(), 2).unwrap();
        assert_eq!(vector, vec![2, 3]);
        assert!((prob - 0.28).abs() < 1e-12);
    }

    #[test]
    fn panda_ukranks_matches_section_1() {
        // Section 1: U-KRanks returns <R5, R5> — R5 is the most probable
        // tuple both at rank 1 and rank 2.
        let ans = ukranks(&panda(), 2).unwrap();
        assert_eq!(ans[0].0, 2);
        assert_eq!(ans[1].0, 2);
        // Pr(R5 ranked 1st) = worlds where R5 present, R1 and R2 absent:
        // W9 (0.28) + W11 (0.056) = 0.336.
        assert!((ans[0].1 - 0.336).abs() < 1e-12);
    }

    #[test]
    fn position_probabilities_sum_to_topk_probability() {
        let view = panda();
        let pos = position_probabilities(&view, 2).unwrap();
        let topk = topk_probabilities(&view, 2).unwrap();
        for i in 0..view.len() {
            let s: f64 = pos[i].iter().sum();
            assert!((s - topk[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn topk_probability_bounded_by_membership() {
        let view = panda();
        let pr = topk_probabilities(&view, 2).unwrap();
        for (i, t) in view.tuples().iter().enumerate() {
            assert!(pr[i] <= t.prob + 1e-12);
        }
    }

    #[test]
    fn total_topk_mass_equals_expected_min() {
        // Σ_t Pr^k(t) = E[min(k, |W|)]: with k larger than any world, it is
        // the expected world size.
        let view = RankedView::from_ranked_probs(&[0.5, 0.8, 0.3], &[]).unwrap();
        let pr = topk_probabilities(&view, 10).unwrap();
        let total: f64 = pr.iter().sum();
        assert!((total - (0.5 + 0.8 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn k_one_reduces_to_first_place_probability() {
        // Pr^1(t_i) for independent tuples = Pr(t_i) Π_{j<i} (1 - Pr(t_j)).
        let probs = [0.4, 0.9, 0.5];
        let view = RankedView::from_ranked_probs(&probs, &[]).unwrap();
        let pr = topk_probabilities(&view, 1).unwrap();
        assert!((pr[0] - 0.4).abs() < 1e-12);
        assert!((pr[1] - 0.9 * 0.6).abs() < 1e-12);
        assert!((pr[2] - 0.5 * 0.6 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn utopk_on_empty_view() {
        let view = RankedView::from_ranked_probs(&[], &[]).unwrap();
        let (v, p) = utopk(&view, 3).unwrap();
        assert!(v.is_empty());
        assert!((p - 1.0).abs() < 1e-12); // the empty top-k list is certain
    }
}
