//! Shared helpers for the workspace integration tests.
#![allow(dead_code)] // each integration test binary uses a subset of these

use ptk::rng::{RngExt, SeedableRng, StdRng};

use ptk::RankedView;

/// The paper's running example (Table 1) in ranked order:
/// positions 0..=5 are R1 (0.3), R2 (0.4), R5 (0.8), R3 (0.5), R4 (1.0),
/// R6 (0.2), with rules R2⊕R3 = {1,3} and R5⊕R6 = {2,5}.
pub fn panda_view() -> RankedView {
    RankedView::from_ranked_probs(&[0.3, 0.4, 0.8, 0.5, 1.0, 0.2], &[vec![1, 3], vec![2, 5]])
        .expect("the paper's example is valid")
}

/// A random small ranked view driven by a seed: up to `max_n` tuples with
/// random probabilities and random disjoint rules of 2–4 members.
pub fn random_view(seed: u64, max_n: usize) -> RankedView {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(1..=max_n);
    let probs: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..=1.0f64)).collect();
    let mut positions: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut positions);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cursor = 0;
    while cursor + 1 < positions.len() {
        if rng.random_range(0.0..1.0f64) < 0.5 {
            let size = rng.random_range(2..=4usize).min(positions.len() - cursor);
            let group: Vec<usize> = positions[cursor..cursor + size].to_vec();
            let mass: f64 = group.iter().map(|&p| probs[p]).sum();
            if mass <= 1.0 {
                groups.push(group);
                cursor += size;
                continue;
            }
        }
        cursor += 1;
    }
    RankedView::from_ranked_probs(&probs, &groups).expect("generated view is valid")
}
