//! Statistical integration tests of the sampling method: convergence to the
//! exact top-k probabilities, empirical validation of the Chernoff bound,
//! and behaviour of the progressive stopping rule. All runs are seeded, so
//! these tests are deterministic.
#![allow(clippy::needless_range_loop)] // index-paired loops over parallel arrays

mod common;

use common::{panda_view, random_view};
use ptk::engine::{topk_probabilities, SharingVariant};
use ptk::sampling::{chernoff_sample_size, sample_topk, SamplingOptions, StopCriterion};

#[test]
fn error_shrinks_as_sample_grows() {
    let view = random_view(7, 10);
    let k = 3;
    let (exact, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
    let mean_abs_error = |units: u64| -> f64 {
        // Average over several seeds so the comparison is about sample
        // size, not one RNG stream's luck.
        let mut total = 0.0;
        for seed in 0..5u64 {
            let estimate = sample_topk(
                &view,
                k,
                &SamplingOptions {
                    stop: StopCriterion::FixedUnits(units),
                    seed,
                },
            );
            total += exact
                .iter()
                .zip(&estimate.probabilities)
                .map(|(e, s)| (e - s).abs())
                .sum::<f64>()
                / exact.len() as f64;
        }
        total / 5.0
    };
    let coarse = mean_abs_error(100);
    let fine = mean_abs_error(10_000);
    assert!(
        fine < coarse,
        "10k-unit error {fine} should undercut 100-unit error {coarse}"
    );
    assert!(fine < 0.01, "10k-unit mean error {fine} too large");
}

#[test]
fn chernoff_bound_holds_empirically() {
    // With the Theorem 6 sample size for (eps, delta), the relative error
    // on the panda tuples' Pr^2 must stay within eps for (almost) all of a
    // batch of independent runs. We use tuples with sizeable Pr^k so the
    // relative-error form is meaningful.
    let view = panda_view();
    let (exact, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
    let epsilon = 0.2;
    let delta = 0.1;
    let units = chernoff_sample_size(epsilon, delta);
    let mut violations = 0usize;
    let mut checks = 0usize;
    let runs = 40;
    for seed in 0..runs {
        let estimate = sample_topk(
            &view,
            2,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(units),
                seed,
            },
        );
        for pos in 0..view.len() {
            if exact[pos] >= 0.1 {
                checks += 1;
                let rel = (estimate.probabilities[pos] - exact[pos]).abs() / exact[pos];
                if rel > epsilon {
                    violations += 1;
                }
            }
        }
    }
    // Theorem 6 guarantees a per-tuple failure probability of at most
    // delta at this sample size, i.e. at most delta * checks expected
    // violations. (In practice the bound is loose — the paper's Figure 6
    // point — and this run observes roughly half the allowance.)
    let allowance = (delta * checks as f64).ceil() as usize;
    assert!(
        violations <= allowance,
        "{violations} Chernoff violations across {checks} checks at n = {units} \
         (theorem allows {allowance})"
    );
}

#[test]
fn progressive_stops_no_later_than_its_cap_and_converges() {
    let view = random_view(21, 12);
    let k = 4;
    let (exact, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
    let estimate = sample_topk(
        &view,
        k,
        &SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 2000,
                phi: 0.001,
                max_units: 100_000,
            },
            seed: 2,
        },
    );
    assert!(estimate.units <= 100_000);
    assert!(estimate.units >= 2000, "must draw at least one window");
    let max_err = exact
        .iter()
        .zip(&estimate.probabilities)
        .map(|(e, s)| (e - s).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 0.05, "progressive stop left error {max_err}");
}

#[test]
fn sample_length_is_much_shorter_than_the_table_for_small_k() {
    // §5 improvement 1: expected unit length ~ k / mu, not n.
    let probs = vec![0.5; 2_000];
    let view = ptk::RankedView::from_ranked_probs(&probs, &[]).unwrap();
    let estimate = sample_topk(
        &view,
        5,
        &SamplingOptions {
            stop: StopCriterion::FixedUnits(2_000),
            seed: 9,
        },
    );
    assert!(
        estimate.average_sample_length < 20.0,
        "average length {} should be near k/mu = 10",
        estimate.average_sample_length
    );
}

#[test]
fn estimates_stay_in_unit_interval() {
    for seed in 0..10u64 {
        let view = random_view(seed.wrapping_mul(31), 12);
        let estimate = sample_topk(
            &view,
            3,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(500),
                seed,
            },
        );
        for &p in &estimate.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
