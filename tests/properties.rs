//! Property-based tests (proptest) of the workspace's core invariants.
//!
//! Strategy: proptest drives a seed and size bound; a deterministic builder
//! turns them into a random uncertain ranked view with disjoint rules. Every
//! invariant is checked against the possible-world enumeration oracle where
//! one exists.

mod common;

use common::random_view;
use proptest::prelude::*;

use ptk::engine::{
    dp, evaluate_ptk, position_probabilities, topk_probabilities, EngineOptions, Scanner,
    SharingVariant,
};
use ptk::worlds::{enumerate, naive};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// World probabilities are a distribution: nonnegative, summing to 1.
    #[test]
    fn world_probabilities_form_a_distribution(seed in any::<u64>()) {
        let view = random_view(seed, 10);
        let worlds = enumerate(&view).unwrap();
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(worlds.iter().all(|w| w.prob >= 0.0));
    }

    /// Σ_t Pr^k(t) = E[min(k, |W|)] — the total top-k mass equals the
    /// expected size of the (possibly short) top-k list.
    #[test]
    fn total_topk_mass_is_expected_list_size(seed in any::<u64>(), k in 1usize..6) {
        let view = random_view(seed, 10);
        let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
        let total: f64 = pr.iter().sum();
        let expected: f64 = enumerate(&view)
            .unwrap()
            .iter()
            .map(|w| w.prob * w.len().min(k) as f64)
            .sum();
        prop_assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    }

    /// Pr^k(t) <= Pr(t) (the premise of Theorem 3), and Pr^k is monotone in
    /// k.
    #[test]
    fn topk_probability_bounds(seed in any::<u64>()) {
        let view = random_view(seed, 10);
        let (pr2, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
        let (pr4, _) = topk_probabilities(&view, 4, SharingVariant::Lazy);
        for pos in 0..view.len() {
            prop_assert!(pr2[pos] <= view.prob(pos) + 1e-12);
            prop_assert!(pr2[pos] <= pr4[pos] + 1e-12, "Pr^k must grow with k");
            prop_assert!(pr2[pos] >= -1e-12);
        }
    }

    /// The engine equals the enumeration oracle for every sharing variant.
    #[test]
    fn engine_matches_oracle(seed in any::<u64>(), k in 1usize..5) {
        let view = random_view(seed, 9);
        let oracle = naive::topk_probabilities(&view, k).unwrap();
        for variant in [SharingVariant::Rc, SharingVariant::Aggressive, SharingVariant::Lazy] {
            let (pr, _) = topk_probabilities(&view, k, variant);
            for pos in 0..view.len() {
                prop_assert!((pr[pos] - oracle[pos]).abs() < 1e-10,
                    "{variant:?} pos {pos}: {} vs {}", pr[pos], oracle[pos]);
            }
        }
    }

    /// Pruning never changes the answer set.
    #[test]
    fn pruning_is_sound(seed in any::<u64>(), k in 1usize..5, p in 0.05f64..0.95) {
        let view = random_view(seed, 10);
        let with = evaluate_ptk(&view, k, p, &EngineOptions {
            ub_check_interval: 1, ..Default::default()
        });
        let without = evaluate_ptk(&view, k, p,
            &EngineOptions::without_pruning(SharingVariant::Lazy));
        prop_assert_eq!(with.answers, without.answers);
        // And pruning never scans more than the full list.
        prop_assert!(with.stats.scanned <= without.stats.scanned);
    }

    /// Position probabilities are consistent: rows sum to Pr^k, and each
    /// column sums to at most 1 (at most one tuple occupies each rank).
    #[test]
    fn position_probabilities_are_consistent(seed in any::<u64>(), k in 1usize..5) {
        let view = random_view(seed, 9);
        let pos_pr = position_probabilities(&view, k, SharingVariant::Lazy);
        let (topk, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
        for pos in 0..view.len() {
            let row_sum: f64 = pos_pr[pos].iter().sum();
            prop_assert!((row_sum - topk[pos]).abs() < 1e-10);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..k {
            let col_sum: f64 = (0..view.len()).map(|i| pos_pr[i][j]).sum();
            prop_assert!(col_sum <= 1.0 + 1e-9, "rank {j} oversubscribed: {col_sum}");
        }
    }

    /// The lazy ordering never recomputes more DP entries than the
    /// aggressive ordering, which never exceeds no sharing at all (§4.3.2).
    #[test]
    fn sharing_cost_ordering(seed in any::<u64>(), k in 1usize..5) {
        let view = random_view(seed, 14);
        let cost = |variant| {
            let mut s = Scanner::new(&view, k, variant);
            while s.step().is_some() {}
            s.entries_recomputed()
        };
        let rc = cost(SharingVariant::Rc);
        let ar = cost(SharingVariant::Aggressive);
        let lr = cost(SharingVariant::Lazy);
        prop_assert!(lr <= ar);
        prop_assert!(ar <= rc);
    }

    /// DP deconvolution inverts convolution away from the unstable region.
    #[test]
    fn deconvolve_inverts_convolve(
        probs in prop::collection::vec(0.01f64..0.95, 1..12),
        q in 0.01f64..0.95,
        k in 1usize..8,
    ) {
        let base = dp::poisson_binomial(probs.iter().copied(), k);
        let with = dp::convolve(&base, q);
        let back = dp::deconvolve(&with, q).unwrap();
        for (a, b) in back.iter().zip(base.iter()) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    /// A DP row is a (truncated) probability distribution.
    #[test]
    fn dp_rows_are_distributions(
        probs in prop::collection::vec(0.0f64..=1.0, 0..15),
        k in 1usize..6,
    ) {
        let row = dp::poisson_binomial(probs.iter().copied(), k);
        let sum: f64 = row.iter().sum();
        prop_assert!(row.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        prop_assert!(sum <= 1.0 + 1e-9);
        if probs.len() < k {
            prop_assert!((sum - 1.0).abs() < 1e-9, "untruncated row must sum to 1");
        }
    }

    /// The UB-based early exit is exercised at every interval setting
    /// without changing answers.
    #[test]
    fn ub_interval_does_not_change_answers(
        seed in any::<u64>(),
        interval in 1usize..8,
    ) {
        let view = random_view(seed, 12);
        let a = evaluate_ptk(&view, 3, 0.4, &EngineOptions {
            ub_check_interval: interval, ..Default::default()
        });
        let b = evaluate_ptk(&view, 3, 0.4,
            &EngineOptions::without_pruning(SharingVariant::Lazy));
        prop_assert_eq!(a.answers, b.answers);
    }
}
