//! Property-based tests of the workspace's core invariants, on the in-repo
//! deterministic harness ([`ptk::check`]).
//!
//! Strategy: the harness drives a seeded RNG and a size budget; a
//! deterministic builder turns them into a random uncertain ranked view
//! with disjoint rules. Every invariant is checked against the
//! possible-world enumeration oracle where one exists.

mod common;

use common::random_view;
use ptk::check::{check, Config};
use ptk::rng::{RngCore, RngExt};
use ptk::{prop_assert, prop_assert_eq};

use ptk::engine::{
    dp, evaluate_ptk, position_probabilities, topk_probabilities, EngineOptions, Scanner,
    SharingVariant,
};
use ptk::worlds::{enumerate, naive};

/// World probabilities are a distribution: nonnegative, summing to 1.
#[test]
fn world_probabilities_form_a_distribution() {
    check(
        "world distribution",
        Config::cases(64).sizes(1, 10),
        |rng, size| {
            let view = random_view(rng.next_u64(), size);
            let worlds = enumerate(&view).unwrap();
            let total: f64 = worlds.iter().map(|w| w.prob).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(worlds.iter().all(|w| w.prob >= 0.0));
            Ok(())
        },
    );
}

/// Σ_t Pr^k(t) = E[min(k, |W|)] — the total top-k mass equals the
/// expected size of the (possibly short) top-k list.
#[test]
fn total_topk_mass_is_expected_list_size() {
    check(
        "total top-k mass",
        Config::cases(64).sizes(1, 10),
        |rng, size| {
            let k = rng.random_range(1..6usize);
            let view = random_view(rng.next_u64(), size);
            let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
            let total: f64 = pr.iter().sum();
            let expected: f64 = enumerate(&view)
                .unwrap()
                .iter()
                .map(|w| w.prob * w.len().min(k) as f64)
                .sum();
            prop_assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
            Ok(())
        },
    );
}

/// Pr^k(t) <= Pr(t) (the premise of Theorem 3), and Pr^k is monotone in k.
#[test]
fn topk_probability_bounds() {
    check(
        "top-k probability bounds",
        Config::cases(64).sizes(1, 10),
        |rng, size| {
            let view = random_view(rng.next_u64(), size);
            let (pr2, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
            let (pr4, _) = topk_probabilities(&view, 4, SharingVariant::Lazy);
            for pos in 0..view.len() {
                prop_assert!(pr2[pos] <= view.prob(pos) + 1e-12);
                prop_assert!(pr2[pos] <= pr4[pos] + 1e-12, "Pr^k must grow with k");
                prop_assert!(pr2[pos] >= -1e-12);
            }
            Ok(())
        },
    );
}

/// The engine equals the enumeration oracle for every sharing variant.
#[test]
fn engine_matches_oracle() {
    check(
        "engine vs oracle",
        Config::cases(64).sizes(1, 9),
        |rng, size| {
            let k = rng.random_range(1..5usize);
            let view = random_view(rng.next_u64(), size);
            let oracle = naive::topk_probabilities(&view, k).unwrap();
            for variant in [
                SharingVariant::Rc,
                SharingVariant::Aggressive,
                SharingVariant::Lazy,
            ] {
                let (pr, _) = topk_probabilities(&view, k, variant);
                for pos in 0..view.len() {
                    prop_assert!(
                        (pr[pos] - oracle[pos]).abs() < 1e-10,
                        "{variant:?} pos {pos}: {} vs {}",
                        pr[pos],
                        oracle[pos]
                    );
                }
            }
            Ok(())
        },
    );
}

/// Pruning never changes the answer set.
#[test]
fn pruning_is_sound() {
    check(
        "pruning soundness",
        Config::cases(64).sizes(1, 10),
        |rng, size| {
            let k = rng.random_range(1..5usize);
            let p = rng.random_range(0.05..0.95f64);
            let view = random_view(rng.next_u64(), size);
            let with = evaluate_ptk(
                &view,
                k,
                p,
                &EngineOptions {
                    ub_check_interval: 1,
                    ..Default::default()
                },
            );
            let without = evaluate_ptk(
                &view,
                k,
                p,
                &EngineOptions::without_pruning(SharingVariant::Lazy),
            );
            prop_assert_eq!(with.answers, without.answers);
            // And pruning never scans more than the full list.
            prop_assert!(with.stats.scanned <= without.stats.scanned);
            Ok(())
        },
    );
}

/// Position probabilities are consistent: rows sum to Pr^k, and each
/// column sums to at most 1 (at most one tuple occupies each rank).
#[test]
fn position_probabilities_are_consistent() {
    check(
        "position probabilities",
        Config::cases(64).sizes(1, 9),
        |rng, size| {
            let k = rng.random_range(1..5usize);
            let view = random_view(rng.next_u64(), size);
            let pos_pr = position_probabilities(&view, k, SharingVariant::Lazy);
            let (topk, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
            for pos in 0..view.len() {
                let row_sum: f64 = pos_pr[pos].iter().sum();
                prop_assert!((row_sum - topk[pos]).abs() < 1e-10);
            }
            #[allow(clippy::needless_range_loop)]
            for j in 0..k {
                let col_sum: f64 = (0..view.len()).map(|i| pos_pr[i][j]).sum();
                prop_assert!(col_sum <= 1.0 + 1e-9, "rank {j} oversubscribed: {col_sum}");
            }
            Ok(())
        },
    );
}

/// The lazy ordering never recomputes more DP entries than the
/// aggressive ordering, which never exceeds no sharing at all (§4.3.2).
#[test]
fn sharing_cost_ordering() {
    check(
        "sharing cost ordering",
        Config::cases(64).sizes(1, 14),
        |rng, size| {
            let k = rng.random_range(1..5usize);
            let view = random_view(rng.next_u64(), size);
            let cost = |variant| {
                let mut s = Scanner::new(&view, k, variant);
                while s.step().is_some() {}
                s.entries_recomputed()
            };
            let rc = cost(SharingVariant::Rc);
            let ar = cost(SharingVariant::Aggressive);
            let lr = cost(SharingVariant::Lazy);
            prop_assert!(lr <= ar);
            prop_assert!(ar <= rc);
            Ok(())
        },
    );
}

/// DP deconvolution inverts convolution away from the unstable region.
#[test]
fn deconvolve_inverts_convolve() {
    check(
        "deconvolve inverts convolve",
        Config::cases(64).sizes(1, 11),
        |rng, size| {
            let probs: Vec<f64> = (0..size).map(|_| rng.random_range(0.01..0.95f64)).collect();
            let q = rng.random_range(0.01..0.95f64);
            let k = rng.random_range(1..8usize);
            let base = dp::poisson_binomial(probs.iter().copied(), k);
            let with = dp::convolve(&base, q);
            let back = dp::deconvolve(&with, q).unwrap();
            for (a, b) in back.iter().zip(base.iter()) {
                prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// A DP row is a (truncated) probability distribution.
#[test]
fn dp_rows_are_distributions() {
    check(
        "dp rows are distributions",
        Config::cases(64).sizes(0, 14),
        |rng, size| {
            let probs: Vec<f64> = (0..size).map(|_| rng.random_range(0.0..=1.0f64)).collect();
            let k = rng.random_range(1..6usize);
            let row = dp::poisson_binomial(probs.iter().copied(), k);
            let sum: f64 = row.iter().sum();
            prop_assert!(row.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
            prop_assert!(sum <= 1.0 + 1e-9);
            if probs.len() < k {
                prop_assert!((sum - 1.0).abs() < 1e-9, "untruncated row must sum to 1");
            }
            Ok(())
        },
    );
}

/// The UB-based early exit is exercised at every interval setting
/// without changing answers.
#[test]
fn ub_interval_does_not_change_answers() {
    check(
        "UB interval invariance",
        Config::cases(64).sizes(1, 12),
        |rng, size| {
            let interval = rng.random_range(1..8usize);
            let view = random_view(rng.next_u64(), size);
            let a = evaluate_ptk(
                &view,
                3,
                0.4,
                &EngineOptions {
                    ub_check_interval: interval,
                    ..Default::default()
                },
            );
            let b = evaluate_ptk(
                &view,
                3,
                0.4,
                &EngineOptions::without_pruning(SharingVariant::Lazy),
            );
            prop_assert_eq!(a.answers, b.answers);
            Ok(())
        },
    );
}
