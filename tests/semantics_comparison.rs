//! Cross-semantics integration tests: the four query semantics (PT-k,
//! U-TopK, U-KRanks, expected ranks) on the same inputs, checking the
//! structural relationships the paper's §6.1 discussion rests on.

mod common;

use common::{panda_view, random_view};
use ptk::engine::{topk_probabilities, SharingVariant};
use ptk::rankers::{expected_rank_topk, expected_ranks, ukranks, utopk, UTopKOptions};
use ptk::worlds::naive;

#[test]
fn utopk_vector_probability_never_exceeds_any_members_topk_probability() {
    // Pr(vector is exactly the top-k) <= Pr(t in top-k) for each member.
    for seed in 0..25u64 {
        let view = random_view(seed.wrapping_mul(7919), 10);
        let k = 1 + (seed % 4) as usize;
        let answer = utopk(&view, k, &UTopKOptions::default()).unwrap();
        let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
        for &pos in &answer.vector {
            assert!(
                answer.probability <= pr[pos] + 1e-10,
                "seed {seed}: vector prob {} > Pr^k({pos}) = {}",
                answer.probability,
                pr[pos]
            );
        }
    }
}

#[test]
fn ukranks_winners_have_positive_topk_probability() {
    for seed in 0..25u64 {
        let view = random_view(seed.wrapping_mul(104729), 10);
        let k = 1 + (seed % 4) as usize;
        let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
        for entry in ukranks(&view, k) {
            if entry.probability > 0.0 {
                assert!(
                    pr[entry.position] >= entry.probability - 1e-10,
                    "seed {seed}: rank-{} winner has Pr^k {} < rank prob {}",
                    entry.rank,
                    pr[entry.position],
                    entry.probability
                );
            }
        }
    }
}

#[test]
fn expected_rank_of_certain_top_tuple_is_best() {
    // A certain tuple at the top of the ranking minimizes expected rank.
    let view = ptk::RankedView::from_ranked_probs(&[1.0, 0.6, 0.7, 0.5], &[]).unwrap();
    let er = expected_ranks(&view);
    let best = expected_rank_topk(&view, 1);
    assert_eq!(best[0].position, 0);
    assert_eq!(er[0], 0.0);
}

#[test]
fn panda_semantics_disagree_exactly_as_the_paper_describes() {
    let view = panda_view();
    // PT-2 at 0.35: {R2, R5, R3} (positions 1, 2, 3).
    let ptk_answer = naive::ptk_answer(&view, 2, 0.35).unwrap();
    assert_eq!(ptk_answer, vec![1, 2, 3]);
    // U-Top2: <R5, R3> — a strict subset of the PT-k answers here.
    let ut = utopk(&view, 2, &UTopKOptions::default()).unwrap();
    assert!(ut.vector.iter().all(|pos| ptk_answer.contains(pos)));
    // U-KRanks: R5 twice — covers a strict subset of PT-k answers.
    let kr = ukranks(&view, 2);
    assert_eq!(kr[0].position, kr[1].position);
    // Expected ranks put R5 first (position 2: high probability AND high
    // rank, er = 0.8*0.7 + 0.2*3.2 = 1.2), ahead of the certain but
    // low-scoring R4 (er = 2.0) — a different winner than U-KRanks' rank-1
    // criterion would suggest from Pr alone.
    let er = expected_rank_topk(&view, 3);
    assert_eq!(er[0].position, 2);
    assert!((er[0].expected_rank - 1.2).abs() < 1e-9);
    // R2 (position 1) and R4 (position 4) tie at er = 2.0 exactly; the tie
    // breaks toward the higher-ranked position.
    assert_eq!(er[1].position, 1);
    assert_eq!(er[2].position, 4);
    assert!((er[1].expected_rank - 2.0).abs() < 1e-9);
    assert!((er[2].expected_rank - 2.0).abs() < 1e-9);
}

#[test]
fn total_expected_rank_mass_is_conserved() {
    // Σ_t er(t) = Σ_W Pr(W) Σ_t rank(t, W); check against enumeration.
    for seed in 0..15u64 {
        let view = random_view(seed.wrapping_mul(31337), 9);
        let er = expected_ranks(&view);
        let total: f64 = er.iter().sum();
        let oracle: f64 = ptk::worlds::enumerate(&view)
            .unwrap()
            .iter()
            .map(|w| {
                let present: f64 = (0..w.len()).map(|r| r as f64).sum();
                let absent = (view.len() - w.len()) as f64 * w.len() as f64;
                w.prob * (present + absent)
            })
            .sum();
        assert!(
            (total - oracle).abs() < 1e-9,
            "seed {seed}: {total} vs {oracle}"
        );
    }
}
