//! Golden determinism tests: a fixed seed must produce bit-identical
//! sample-unit sequences and `Pr^k(t)` estimates on every run, every
//! machine, every build.
//!
//! The golden values below were produced by this very test setup and are
//! locked in; they only change if the RNG stack ([`ptk::rng`]) or the
//! sampler's variate-consumption order changes — both of which are
//! deliberate, reviewable events under the workspace's determinism policy
//! (see DESIGN.md). Comparisons are on exact `f64` bit patterns, not
//! tolerances.

mod common;

use common::panda_view;
use ptk::obs::Metrics;
use ptk::rng::{SeedableRng, StdRng};
use ptk::sampling::{
    sample_ptk_recorded, sample_topk, SamplingOptions, StopCriterion, WorldSampler,
};

/// The first eight top-2 sample units of the paper's panda view under seed
/// `0x9e37_79b9_7f4a_7c15`, as ranked positions.
const GOLDEN_UNITS: &[&[usize]] = &[
    &[1, 2],
    &[0, 2],
    &[2, 3],
    &[2, 3],
    &[1, 2],
    &[2, 3],
    &[1, 2],
    &[0, 1],
];

/// Bit patterns of the `Pr^2` estimates after 20 000 units under seed 7.
/// As decimals: [0.2976, 0.39415, 0.70575, 0.38475, 0.2052, 0.01255] —
/// within 0.01 of the exact [0.3, 0.4, 0.704, 0.38, 0.202, 0.014].
const GOLDEN_PR2_BITS: &[u64] = &[
    0x3fd3_0be0_ded2_88ce,
    0x3fd9_39c0_ebed_fa44,
    0x3fe6_9581_0624_dd2f,
    0x3fd8_9fbe_76c8_b439,
    0x3fca_43fe_5c91_d14e,
    0x3f89_b3d0_7c84_b5dd,
];

const GOLDEN_AVG_LEN_BITS: u64 = 0x400c_f2b0_20c4_9ba6;

fn draw_units() -> Vec<Vec<usize>> {
    let view = panda_view();
    let mut sampler = WorldSampler::new(&view, 2);
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15);
    let mut unit = Vec::new();
    (0..GOLDEN_UNITS.len())
        .map(|_| {
            sampler.draw_unit(&mut rng, &mut unit);
            unit.clone()
        })
        .collect()
}

fn estimate() -> ptk::sampling::SampleEstimate {
    sample_topk(
        &panda_view(),
        2,
        &SamplingOptions {
            stop: StopCriterion::FixedUnits(20_000),
            seed: 7,
        },
    )
}

#[test]
fn sample_unit_sequence_matches_golden() {
    let units = draw_units();
    assert_eq!(units, GOLDEN_UNITS, "seeded unit sequence drifted");
}

#[test]
fn estimates_match_golden_bit_patterns() {
    let est = estimate();
    let bits: Vec<u64> = est.probabilities.iter().map(|p| p.to_bits()).collect();
    assert_eq!(
        bits, GOLDEN_PR2_BITS,
        "seeded Pr^2 estimates drifted: {:?}",
        est.probabilities
    );
    assert_eq!(est.units, 20_000);
    assert_eq!(est.average_sample_length.to_bits(), GOLDEN_AVG_LEN_BITS);
    // And the estimated answer set at the paper's p = 0.35 is stable.
    assert_eq!(est.answers(0.35), vec![1, 2, 3]);
}

/// Runs the recorded pipeline — exact engine plus seeded sampling — into
/// one registry and returns the snapshot's timing-free JSON rendering.
fn recorded_pipeline_json() -> String {
    let view = panda_view();
    let metrics = Metrics::new();
    ptk::engine::evaluate_ptk_recorded(
        &view,
        2,
        0.35,
        &ptk::engine::EngineOptions::default(),
        &metrics,
    );
    let options = SamplingOptions {
        stop: StopCriterion::FixedUnits(5_000),
        seed: 7,
    };
    sample_ptk_recorded(&view, 2, 0.35, &options, &metrics);
    metrics.snapshot().to_json(false)
}

#[test]
fn metrics_snapshots_are_bit_deterministic_without_timings() {
    // Counters and histograms are pure functions of the seeded run, so the
    // timing-free JSON rendering must be byte-identical across repeats.
    // Timings are wall-clock and excluded from golden comparisons — the
    // rendering must not leak them.
    let (a, b) = (recorded_pipeline_json(), recorded_pipeline_json());
    assert_eq!(a, b, "metrics snapshot drifted between identical runs");
    assert!(a.contains("\"engine.scanned\""), "engine counters missing");
    assert!(
        a.contains("\"sampling.units\""),
        "sampling counters missing"
    );
    assert!(
        a.contains("\"sampling.unit_len\""),
        "histograms missing from snapshot"
    );
    assert!(!a.contains("nanos"), "timings leaked into golden rendering");
}

/// The logical-clock rendering of the paper's panda query (k=2, p=0.35,
/// default engine options), traced through the exact executor. Worker ids
/// and wall-clock offsets are excluded from the rendering, so this text is
/// a pure function of the query — locked in like the sample goldens above.
const GOLDEN_LOGICAL_TRACE: &str = "\
q0 #0 B query
q0 #1 i answer rank=1
q0 #2 i answer rank=2
q0 #3 i answer rank=3
q0 #4 B retrieval
q0 #5 E retrieval tuples=6
q0 #6 B reorder
q0 #7 E reorder rules_compressed=2
q0 #8 B dp
q0 #9 E dp cells=12 entries=6
q0 #10 B bound
q0 #11 E bound checks=0
q0 #12 E query scanned=6 evaluated=6 pruned_membership=0 pruned_rule=0 answers=3
";

fn traced_panda_logical() -> String {
    use std::sync::Arc;
    let view = panda_view();
    let sink = Arc::new(ptk::obs::RingSink::new(1024));
    let tracer = ptk::obs::Tracer::new(Arc::clone(&sink) as ptk::obs::SharedSink, 0, 0);
    let plan = ptk::engine::PtkPlan::new(2, 0.35, &ptk::engine::EngineOptions::default());
    let mut source = ptk::access::ViewSource::new(&view);
    let _ = ptk::engine::PtkExecutor::new(&plan)
        .with_tracer(&tracer)
        .execute(&mut source);
    ptk::obs::render_logical(&sink.events())
}

#[test]
fn logical_trace_matches_golden() {
    let rendering = traced_panda_logical();
    assert_eq!(
        rendering, GOLDEN_LOGICAL_TRACE,
        "logical-clock trace drifted"
    );
    // And it is identical across repeats — no wall-clock leakage.
    assert_eq!(rendering, traced_panda_logical());
}

#[test]
fn runs_are_bit_identical_across_repeats() {
    let (a, b) = (estimate(), estimate());
    let bits = |e: &ptk::sampling::SampleEstimate| {
        e.probabilities
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(bits(&a), bits(&b));
    assert_eq!(draw_units(), draw_units());
}
