//! Cross-crate end-to-end tests: the full pipeline from table construction
//! through predicates, rule projection and all four query engines.
#![allow(clippy::needless_range_loop)] // index-paired loops over parallel arrays

mod common;

use common::{panda_view, random_view};
use ptk::engine::{evaluate_ptk, topk_probabilities, EngineOptions, SharingVariant};
use ptk::rankers::{ukranks, utopk, UTopKOptions};
use ptk::sampling::{sample_topk, SamplingOptions, StopCriterion};
use ptk::worlds::naive;
use ptk::{
    answer_exact, answer_sampling, ComparisonOp, ExactOptions, Predicate, PtkQuery, RankedView,
    Ranking, TopKQuery, UncertainTableBuilder, Value,
};

/// Builds the panda table (Table 1) at the table level.
fn panda_table() -> ptk::UncertainTable {
    let mut b = UncertainTableBuilder::new(vec!["duration".into(), "loc".into()]);
    let _r1 = b
        .push(0.3, vec![Value::Float(25.0), Value::from("A")])
        .unwrap();
    let r2 = b
        .push(0.4, vec![Value::Float(21.0), Value::from("B")])
        .unwrap();
    let r3 = b
        .push(0.5, vec![Value::Float(13.0), Value::from("B")])
        .unwrap();
    let _r4 = b
        .push(1.0, vec![Value::Float(12.0), Value::from("A")])
        .unwrap();
    let r5 = b
        .push(0.8, vec![Value::Float(17.0), Value::from("E")])
        .unwrap();
    let r6 = b
        .push(0.2, vec![Value::Float(11.0), Value::from("E")])
        .unwrap();
    b.exclusive(&[r2, r3]).unwrap();
    b.exclusive(&[r5, r6]).unwrap();
    b.finish().unwrap()
}

#[test]
fn table_level_and_view_level_agree() {
    let table = panda_table();
    let query = PtkQuery::new(TopKQuery::top(2, Ranking::descending(0)), 0.35).unwrap();
    let from_table = answer_exact(&table, &query, &ExactOptions::default()).unwrap();
    let view = panda_view();
    let from_view = evaluate_ptk(&view, 2, 0.35, &EngineOptions::default());
    assert_eq!(from_table.matches.len(), from_view.answers.len());
    for (m, a) in from_table.matches.iter().zip(&from_view.answers) {
        assert!((m.probability - a.probability).abs() < 1e-12);
        assert!((a.probability - from_view.probabilities[a.rank].unwrap()).abs() < 1e-12);
    }
}

#[test]
fn predicate_projection_matches_filtered_world_semantics() {
    // Applying a predicate and then answering the PT-k query must equal
    // answering over the predicate-filtered possible worlds — the paper's
    // Answer(Q, p, T) = Answer(Q, p, P(T)) claim (§4.1).
    let table = panda_table();
    let predicate = Predicate::compare(0, ComparisonOp::Gt, 12.0);
    let query = TopKQuery::new(2, predicate, Ranking::descending(0)).unwrap();
    let view = RankedView::build(&table, &query).unwrap();
    // Filtered view: R1, R2, R5, R3 with rules {R2,R3} (R5's partner R6 was
    // filtered out, so R5 becomes effectively independent — but keeps its
    // own membership probability).
    assert_eq!(view.len(), 4);
    let oracle = naive::topk_probabilities(&view, 2).unwrap();
    let (engine, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
    for pos in 0..view.len() {
        assert!((oracle[pos] - engine[pos]).abs() < 1e-12);
    }
    // R5 at position 2 with only R1, R2 above it:
    // Pr^2 = 0.8 * (Pr(0 of {0.3, 0.4}) + Pr(1 of {0.3, 0.4})) = 0.8 * 0.88.
    assert!((engine[2] - 0.8 * (1.0 - 0.3 * 0.4)).abs() < 1e-12);
}

#[test]
fn all_engines_agree_on_random_tables() {
    for seed in 0..30u64 {
        let view = random_view(seed, 9);
        let k = 1 + (seed % 4) as usize;
        let threshold = 0.25;
        let oracle = naive::ptk_answer(&view, k, threshold).unwrap();
        let exact = evaluate_ptk(&view, k, threshold, &EngineOptions::default());
        assert_eq!(exact.answer_ranks(), oracle, "seed {seed}");
        // Sampling: generous sample count to keep this deterministic test
        // comfortably past the threshold noise, skipping borderline cases.
        let estimate = sample_topk(
            &view,
            k,
            &SamplingOptions {
                stop: StopCriterion::FixedUnits(40_000),
                seed,
            },
        );
        let exact_probs = naive::topk_probabilities(&view, k).unwrap();
        let borderline = exact_probs.iter().any(|p| (p - threshold).abs() < 0.02);
        if !borderline {
            assert_eq!(
                estimate.answers(threshold),
                oracle,
                "seed {seed} (sampling)"
            );
        }
    }
}

#[test]
fn rankers_run_end_to_end_on_random_tables() {
    for seed in 100..120u64 {
        let view = random_view(seed, 9);
        let k = 1 + (seed % 3) as usize;
        let ut = utopk(&view, k, &UTopKOptions::default()).unwrap();
        let (oracle_vec, oracle_prob) = naive::utopk(&view, k).unwrap();
        assert!((ut.probability - oracle_prob).abs() < 1e-10, "seed {seed}");
        let _ = oracle_vec;
        let kr = ukranks(&view, k);
        let oracle = naive::ukranks(&view, k).unwrap();
        for j in 0..k {
            assert_eq!(kr[j].position, oracle[j].0, "seed {seed} rank {j}");
        }
    }
}

#[test]
fn facade_sampling_is_deterministic() {
    let table = panda_table();
    let query = PtkQuery::new(TopKQuery::top(2, Ranking::descending(0)), 0.35).unwrap();
    let options = SamplingOptions {
        stop: StopCriterion::FixedUnits(5_000),
        seed: 3,
    };
    let a = answer_sampling(&table, &query, &options).unwrap();
    let b = answer_sampling(&table, &query, &options).unwrap();
    assert_eq!(a.matches.len(), b.matches.len());
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.probability, y.probability);
    }
}

#[test]
fn certain_rules_and_certain_tuples_interact_correctly() {
    // A certain rule (mass 1) above a certain tuple: the top-1 must belong
    // to the rule, so the certain tuple's Pr^1 is 0.
    let view = RankedView::from_ranked_probs(&[0.6, 0.4, 1.0], &[vec![0, 1]]).unwrap();
    let (pr, _) = topk_probabilities(&view, 1, SharingVariant::Lazy);
    assert!((pr[0] - 0.6).abs() < 1e-12);
    assert!((pr[1] - 0.4).abs() < 1e-12);
    assert!(pr[2].abs() < 1e-12);
    // With k = 2 the certain tuple is always in.
    let (pr, _) = topk_probabilities(&view, 2, SharingVariant::Lazy);
    assert!((pr[2] - 1.0).abs() < 1e-12);
}

#[test]
fn file_backed_run_answers_like_the_view_engine() {
    // Write the panda example to a run file, stream the PT-k query from
    // disk, and compare against the in-memory engine.
    let dir = std::env::temp_dir().join(format!("ptk-e2e-{}.run", std::process::id()));
    ptk::write_run(
        &dir,
        &[
            (25.0, 0.3, None),
            (21.0, 0.4, Some(0)),
            (13.0, 0.5, Some(0)),
            (12.0, 1.0, None),
            (17.0, 0.8, Some(1)),
            (11.0, 0.2, Some(1)),
        ],
    )
    .unwrap();
    let mut source = ptk::FileSource::open(&dir).unwrap();
    let result =
        ptk::evaluate_ptk_source(&mut source, 2, 0.35, &ptk::engine::StreamOptions::default());
    let ids: Vec<usize> = result.answers.iter().map(|a| a.id.index()).collect();
    assert_eq!(ids, vec![1, 4, 2]); // R2, R5, R3
    assert!((result.answers[1].probability - 0.704).abs() < 1e-12);
    let _ = std::fs::remove_file(&dir);
}

#[test]
fn large_k_equals_membership_for_everyone() {
    for seed in 200..210u64 {
        let view = random_view(seed, 10);
        let k = view.len() + 5;
        let (pr, _) = topk_probabilities(&view, k, SharingVariant::Lazy);
        for pos in 0..view.len() {
            assert!(
                (pr[pos] - view.prob(pos)).abs() < 1e-12,
                "seed {seed} pos {pos}"
            );
        }
    }
}
