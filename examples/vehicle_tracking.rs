//! Mobile-object tracking — the paper's second motivating domain (§1).
//!
//! Radar stations estimate vehicle speeds; each reading carries a
//! confidence, and readings of the same vehicle taken by overlapping
//! stations within the same second are mutually exclusive (at most one is
//! the true reading). A traffic analyst asks: *"which readings have at
//! least a 50% chance of being among the 5 fastest in the last minute?"* —
//! a PT-k query with a time-window predicate.
//!
//! Run with: `cargo run --example vehicle_tracking`

use ptk::rng::{RngExt, SeedableRng, StdRng};

use ptk::{
    answer_exact, answer_sampling, ComparisonOp, ExactOptions, Predicate, PtkQuery, Ranking,
    SamplingOptions, StopCriterion, TopKQuery, UncertainTableBuilder, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(60);
    let mut builder = UncertainTableBuilder::new(vec![
        "speed_kmh".into(),
        "vehicle".into(),
        "station".into(),
        "second".into(),
    ]);

    // 300 single-station readings over a 3-minute window…
    for i in 0..300 {
        let second = rng.random_range(0..180i64);
        let speed = rng.random_range(60.0..140.0f64);
        builder.push(
            rng.random_range(0.5..0.95f64),
            vec![
                Value::Float(speed),
                Value::Text(format!("V{:03}", i % 80)),
                Value::Text(format!("S{}", rng.random_range(1..9u32))),
                Value::Int(second),
            ],
        )?;
    }
    // …plus 40 double-detections: two stations, conflicting speeds, at most
    // one correct (a generation rule each).
    for i in 0..40 {
        let second = rng.random_range(0..180i64);
        let base = rng.random_range(80.0..150.0f64);
        let vehicle = format!("V{:03}", 80 + i);
        let a = builder.push(
            rng.random_range(0.3..0.6f64),
            vec![
                Value::Float(base + rng.random_range(0.0..8.0f64)),
                Value::Text(vehicle.clone()),
                Value::Text("S3".into()),
                Value::Int(second),
            ],
        )?;
        let b = builder.push(
            rng.random_range(0.2..0.4f64),
            vec![
                Value::Float(base - rng.random_range(0.0..8.0f64)),
                Value::Text(vehicle),
                Value::Text("S4".into()),
                Value::Int(second),
            ],
        )?;
        builder.exclusive(&[a, b])?;
    }
    let table = builder.finish()?;
    println!(
        "{} speed readings, {} conflicting double-detections",
        table.len(),
        table.rules().len()
    );

    // Last minute only: second >= 120.
    let window = Predicate::compare(3, ComparisonOp::Ge, 120i64);
    let query = PtkQuery::new(TopKQuery::new(5, window, Ranking::descending(0))?, 0.5)?;

    let exact = answer_exact(&table, &query, &ExactOptions::default())?;
    println!("\nreadings with Pr^5 >= 0.5 in the last minute (exact):");
    for m in &exact.matches {
        let row = table.tuple(m.id);
        println!(
            "  {} at {:.1} km/h (station {}, t={}s, confidence {:.2}): Pr^5 = {:.3}",
            row.attr(1).unwrap(),
            row.attr(0).unwrap().as_f64().unwrap_or(f64::NAN),
            row.attr(2).unwrap(),
            row.attr(3).unwrap(),
            row.membership().value(),
            m.probability,
        );
    }
    if let Some(stats) = exact.stats {
        println!(
            "  [scanned {} candidates before stopping: {:?}]",
            stats.scanned, stats.stop
        );
    }

    // Cross-check by sampling.
    let approx = answer_sampling(
        &table,
        &query,
        &SamplingOptions {
            stop: StopCriterion::FixedUnits(50_000),
            seed: 1,
        },
    )?;
    let exact_ids: Vec<_> = exact.matches.iter().map(|m| m.id).collect();
    let approx_ids: Vec<_> = approx.matches.iter().map(|m| m.id).collect();
    println!(
        "\nsampling agrees on {}/{} answers",
        approx_ids
            .iter()
            .filter(|id| exact_ids.contains(id))
            .count(),
        exact_ids.len()
    );
    Ok(())
}
