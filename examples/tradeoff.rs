//! Exact vs. sampling trade-off on a synthetic workload (§6.2's theme:
//! "the exact algorithm and the sampling algorithm each has its edge").
//!
//! Generates the paper's default synthetic table (20,000 tuples, 2,000
//! rules) and answers the same PT-k query with the exact engine (all three
//! sharing variants) and the sampler, reporting wall time, scan depth and
//! answer agreement for a sweep of k.
//!
//! Run with: `cargo run --release --example tradeoff`

use std::time::Instant;

use ptk::datagen::{SyntheticConfig, SyntheticDataset};
use ptk::engine::{evaluate_ptk, EngineOptions, SharingVariant};
use ptk::sampling::{sample_ptk, SamplingOptions, StopCriterion};

fn main() {
    let ds = SyntheticDataset::generate(&SyntheticConfig::with_seed(99));
    let p = 0.3;
    println!(
        "synthetic table: {} tuples, {} rules; threshold p = {p}",
        ds.table.len(),
        ds.table.rules().len()
    );
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9} {:>10}",
        "k",
        "RC (ms)",
        "RC+AR (ms)",
        "RC+LR (ms)",
        "sample (ms)",
        "scanned",
        "answers",
        "agreement"
    );

    for k in [10, 50, 100, 200, 400] {
        let mut times = Vec::new();
        let mut exact_answers = Vec::new();
        let mut scanned = 0;
        for variant in [
            SharingVariant::Rc,
            SharingVariant::Aggressive,
            SharingVariant::Lazy,
        ] {
            let started = Instant::now();
            let result = evaluate_ptk(&ds.view, k, p, &EngineOptions::with_variant(variant));
            times.push(started.elapsed().as_secs_f64() * 1e3);
            scanned = result.stats.scanned;
            exact_answers = result.answer_ranks();
        }

        let options = SamplingOptions {
            stop: StopCriterion::Progressive {
                d: 500,
                phi: 0.002,
                max_units: 20_000,
            },
            seed: 5,
        };
        let started = Instant::now();
        let (sample_answers, _) = sample_ptk(&ds.view, k, p, &options);
        let sample_ms = started.elapsed().as_secs_f64() * 1e3;

        // Answer agreement: |A ∩ B| / |A ∪ B|.
        let inter = sample_answers
            .iter()
            .filter(|a| exact_answers.contains(a))
            .count();
        let union = exact_answers.len() + sample_answers.len() - inter;
        let agreement = if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        };

        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9} {:>9} {:>9.1}%",
            k,
            times[0],
            times[1],
            times[2],
            sample_ms,
            scanned,
            exact_answers.len(),
            agreement * 100.0
        );
    }
    println!("\n(the exact engine wins at small k; sampling catches up as k grows — Figure 5's crossover)");
}
