//! Progressive retrieval: PT-k over a Threshold-Algorithm middleware.
//!
//! Section 4.4 of the paper assumes tuples can be retrieved progressively
//! in ranking order (it cites Fagin's TA) so the pruning rules can stop
//! retrieval early. This example builds a multi-attribute dataset, ranks it
//! by a weighted sum of two attributes through `TaSource`, and runs the
//! streaming PT-k engine on top — then shows how little of the sorted lists
//! was ever touched.
//!
//! Scenario: apartment listings with a location score and a condition
//! score, each listing confirmed with some probability (stale listings),
//! where listings from the same address are mutually exclusive duplicates.
//!
//! Run with: `cargo run --release --example streaming_ta`

use ptk::rng::{RngExt, SeedableRng, StdRng};

use ptk::{evaluate_ptk_source, AggregateFn, RankedSource, StreamOptions, TaSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 50_000;

    // Two attribute columns plus confirmation probabilities; every 10th
    // pair of listings shares an address (a 2-member generation rule).
    let mut attrs: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut probs = Vec::with_capacity(n);
    let mut rules: Vec<Option<u32>> = vec![None; n];
    for i in 0..n {
        attrs.push(vec![
            rng.random_range(0.0..100.0f64),
            rng.random_range(0.0..100.0f64),
        ]);
        probs.push(rng.random_range(0.2..0.9f64));
        if i % 10 == 1 {
            let key = (i / 10) as u32;
            rules[i - 1] = Some(key);
            rules[i] = Some(key);
            // Keep the pair's total mass legal.
            probs[i - 1] = probs[i - 1].min(0.5);
            probs[i] = probs[i].min(0.5);
        }
    }

    // Rank by 0.7·location + 0.3·condition, lazily, through TA.
    let mut source = TaSource::new(
        &attrs,
        probs,
        rules,
        AggregateFn::WeightedSum(vec![0.7, 0.3]),
    )?;

    // "Listings with >= 40% probability of being a top-20 result."
    let result = evaluate_ptk_source(&mut source, 20, 0.4, &StreamOptions::default());

    println!(
        "PT-20 answers at p = 0.4 ({} listings):",
        result.answers.len()
    );
    for a in result.answers.iter().take(10) {
        println!(
            "  listing {:>6}  score {:>6.2}  Pr^20 = {:.3}",
            a.id.index(),
            a.score,
            a.probability
        );
    }
    if result.answers.len() > 10 {
        println!("  … and {} more", result.answers.len() - 10);
    }

    println!("\nretrieval effort:");
    println!("  listings in the table:        {n}");
    println!("  tuples pulled from TA:        {}", source.retrieved());
    println!(
        "  sorted-list entries touched:  {}",
        source.sorted_accesses()
    );
    println!("  early stop: {:?}", result.stats.stop);
    println!(
        "\nthe pruning rules stopped retrieval after {:.2}% of the table — the\n\
         sorted lists were never materialized below that point",
        100.0 * source.retrieved() as f64 / n as f64
    );
    Ok(())
}
