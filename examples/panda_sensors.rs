//! The paper's running example (Tables 1–3): endangered-animal detection
//! with unreliable sensors.
//!
//! Reconstructs Table 1, enumerates its 12 possible worlds (Table 2),
//! computes the top-2 probability of every record (Table 3), and answers
//! the PT-2 query of Example 1, comparing against the U-TopK and U-KRanks
//! semantics discussed in §1.
//!
//! Run with: `cargo run --example panda_sensors`

use ptk::rankers::{ukranks, utopk, UTopKOptions};
use ptk::worlds::{enumerate, naive};
use ptk::{
    answer_exact, ExactOptions, PtkQuery, RankedView, Ranking, TopKQuery, UncertainTableBuilder,
    Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1: RID, location, sensor, duration (minutes), confidence.
    let rows: [(&str, &str, &str, f64, f64); 6] = [
        ("R1", "A", "S101", 25.0, 0.3),
        ("R2", "B", "S206", 21.0, 0.4),
        ("R3", "B", "S231", 13.0, 0.5),
        ("R4", "A", "S101", 12.0, 1.0),
        ("R5", "E", "S063", 17.0, 0.8),
        ("R6", "E", "S732", 11.0, 0.2),
    ];
    let mut builder = UncertainTableBuilder::new(vec![
        "duration".into(),
        "rid".into(),
        "loc".into(),
        "sensor".into(),
    ]);
    let mut ids = Vec::new();
    for (rid, loc, sensor, duration, conf) in rows {
        ids.push(builder.push(
            conf,
            vec![
                Value::Float(duration),
                Value::from(rid),
                Value::from(loc),
                Value::from(sensor),
            ],
        )?);
    }
    // Co-located simultaneous detections: R2 ⊕ R3 and R5 ⊕ R6.
    builder.exclusive(&[ids[1], ids[2]])?;
    builder.exclusive(&[ids[4], ids[5]])?;
    let table = builder.finish()?;

    let top2 = TopKQuery::top(2, Ranking::descending(0));
    let view = RankedView::build(&table, &top2)?;
    let name = |pos: usize| table.tuple(view.tuple(pos).id).attr(1).unwrap().to_string();

    // Table 2: the possible worlds.
    println!("Table 2 — possible worlds and their top-2 lists:");
    let mut worlds = enumerate(&view)?;
    worlds.sort_by(|a, b| b.prob.total_cmp(&a.prob));
    for w in &worlds {
        let members: Vec<String> = w.members.iter().map(|&m| name(m)).collect();
        let top: Vec<String> = w.top_k(2).iter().map(|&m| name(m)).collect();
        println!(
            "  {{{}}}  Pr = {:.3}   top-2: {}",
            members.join(", "),
            w.prob,
            top.join(", ")
        );
    }
    let total: f64 = worlds.iter().map(|w| w.prob).sum();
    println!(
        "  ({} worlds, total probability {:.3})",
        worlds.len(),
        total
    );

    // Table 3: top-2 probabilities.
    println!("\nTable 3 — top-2 probability of every record:");
    let pr = naive::topk_probabilities(&view, 2)?;
    for (pos, p) in pr.iter().enumerate() {
        println!("  {}: Pr^2 = {:.3}", name(pos), p);
    }

    // Example 1: PT-2 query with p = 0.35.
    let query = PtkQuery::new(top2, 0.35)?;
    let answer = answer_exact(&table, &query, &ExactOptions::default())?;
    let names: Vec<String> = answer
        .matches
        .iter()
        .map(|m| table.tuple(m.id).attr(1).unwrap().to_string())
        .collect();
    println!(
        "\nPT-2 answer at p = 0.35: {{{}}} (the paper expects {{R2, R5, R3}})",
        names.join(", ")
    );

    // §1's comparison: the other two top-k semantics.
    let ut = utopk(&view, 2, &UTopKOptions::default())?;
    let ut_names: Vec<String> = ut.vector.iter().map(|&p| name(p)).collect();
    println!(
        "U-Top2 answer: <{}> with probability {:.3} (the paper expects <R5, R3> at 0.28)",
        ut_names.join(", "),
        ut.probability
    );

    let kr = ukranks(&view, 2);
    for entry in &kr {
        println!(
            "U-KRanks rank {}: {} with probability {:.3}",
            entry.rank,
            name(entry.position),
            entry.probability
        );
    }
    println!("(the paper expects R5 at both ranks)");
    Ok(())
}
