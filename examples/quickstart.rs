//! Quickstart: build a small uncertain table, run a PT-k query exactly and
//! by sampling, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use ptk::{
    answer_exact, answer_sampling, ExactOptions, PtkQuery, Ranking, SamplingOptions, StopCriterion,
    TopKQuery, UncertainTableBuilder, Value,
};

fn main() -> ptk::Result<(), Box<dyn std::error::Error>> {
    // An uncertain table: sensor readings with a confidence (membership
    // probability) each. Readings 1 and 2 came from co-located sensors at
    // the same moment, so at most one of them is real — a generation rule.
    let mut builder = UncertainTableBuilder::new(vec!["reading".into(), "sensor".into()]);
    let t0 = builder.push(0.9, vec![Value::Float(84.2), Value::from("s-101")])?;
    let t1 = builder.push(0.5, vec![Value::Float(79.9), Value::from("s-206")])?;
    let t2 = builder.push(0.45, vec![Value::Float(78.1), Value::from("s-231")])?;
    let t3 = builder.push(0.7, vec![Value::Float(71.3), Value::from("s-063")])?;
    let t4 = builder.push(1.0, vec![Value::Float(65.0), Value::from("s-104")])?;
    builder.exclusive(&[t1, t2])?;
    let table = builder.finish()?;
    println!(
        "table: {} tuples, {} rules, {} possible worlds",
        table.len(),
        table.rules().len(),
        table.world_count()
    );

    // "Which readings have probability >= 0.4 of being among the top-2?"
    let query = PtkQuery::new(TopKQuery::top(2, Ranking::descending(0)), 0.4)?;

    // Exact answer: one scan of the ranked list, no world enumeration.
    let exact = answer_exact(&table, &query, &ExactOptions::default())?;
    println!("\nexact answers (Pr^2 >= 0.4):");
    for m in &exact.matches {
        let tuple = table.tuple(m.id);
        println!(
            "  {} reading={} sensor={} membership={:.2} Pr^2={:.4}",
            m.id,
            tuple.attr(0).unwrap(),
            tuple.attr(1).unwrap(),
            tuple.membership().value(),
            m.probability,
        );
    }
    if let Some(stats) = exact.stats {
        println!(
            "  [scanned {} of {} tuples, {} DP cells]",
            stats.scanned,
            table.len(),
            stats.dp_cells
        );
    }

    // Approximate answer by sampling possible worlds.
    let sampling = SamplingOptions {
        stop: StopCriterion::Progressive {
            d: 1000,
            phi: 0.002,
            max_units: 100_000,
        },
        seed: 7,
    };
    let approx = answer_sampling(&table, &query, &sampling)?;
    println!("\nsampling answers:");
    for m in &approx.matches {
        println!("  {} estimated Pr^2 = {:.4}", m.id, m.probability);
    }

    let _ = (t0, t3, t4);
    Ok(())
}
