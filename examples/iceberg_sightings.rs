//! The §6.1 scenario: iceberg-sighting analysis on an IIP-like dataset.
//!
//! Synthesizes a dataset shaped like the International Ice Patrol Iceberg
//! Sightings Database (4,231 sightings, 825 multi-sighting icebergs, the
//! paper's six confidence classes), then answers "which sightings have
//! probability >= 0.5 of being among the 10 longest-drifting icebergs?"
//! with PT-k, U-TopK and U-KRanks side by side, reproducing the qualitative
//! contrasts of Tables 5–6.
//!
//! Run with: `cargo run --release --example iceberg_sightings`

use ptk::datagen::{IipConfig, IipDataset};
use ptk::engine::{evaluate_ptk, topk_probabilities, EngineOptions, SharingVariant};
use ptk::rankers::{expected_rank_topk, ukranks, utopk, UTopKOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = IipDataset::generate(&IipConfig::default());
    println!(
        "synthesized IIP-like dataset: {} sightings, {} multi-sighting icebergs",
        ds.table.len(),
        ds.table.rules().len()
    );

    let k = 10;
    let p = 0.5;

    // PT-k: every sighting with top-10 probability >= 0.5.
    let result = evaluate_ptk(&ds.view, k, p, &EngineOptions::default());
    println!(
        "\nPT-{k} answer at p = {p} ({} tuples):",
        result.answers.len()
    );
    let source_col = ds.table.column_index("source").unwrap();
    for a in &result.answers {
        let t = ds.view.tuple(a.rank);
        let row = ds.table.tuple(t.id);
        println!(
            "  rank {:>3}  drifted {:>6.1} days  source {:<5}  membership {:.3}  Pr^10 = {:.3}",
            a.rank + 1,
            t.key.unwrap(),
            row.attr(source_col).unwrap(),
            t.prob,
            a.probability,
        );
    }
    println!(
        "  [scanned {} of {} tuples before stopping: {:?}]",
        result.stats.scanned,
        ds.view.len(),
        result.stats.stop
    );

    // U-TopK: the most probable top-10 vector.
    let ut = utopk(&ds.view, k, &UTopKOptions::default())?;
    println!(
        "\nU-Top{k} answer (probability {:.4}, {} states explored):",
        ut.probability, ut.states_explored
    );
    println!(
        "  ranks: {:?}",
        ut.vector.iter().map(|&v| v + 1).collect::<Vec<_>>()
    );

    // U-KRanks: the most probable tuple at each rank.
    let kr = ukranks(&ds.view, k);
    println!("\nU-KRanks answer:");
    for e in &kr {
        println!(
            "  rank {:>2}: tuple at ranked position {:>3} with probability {:.3}",
            e.rank,
            e.position + 1,
            e.probability
        );
    }

    // Expected ranks (Cormode et al.) as a fourth lens: certain-but-short
    // drifters float to the top under this semantics.
    let er = expected_rank_topk(&ds.view, k);
    println!("\nexpected-rank top-{k} (lowest expected rank first):");
    for e in &er {
        println!(
            "  ranked position {:>3}  expected rank {:>7.2}",
            e.position + 1,
            e.expected_rank
        );
    }

    // The paper's qualitative observations, checked on this dataset.
    let (pr, _) = topk_probabilities(&ds.view, k, SharingVariant::Lazy);
    let answer_ranks = result.answer_ranks();
    let in_ptk = |pos: usize| answer_ranks.contains(&pos);
    let missed_by_utopk: Vec<usize> = answer_ranks
        .iter()
        .copied()
        .filter(|pos| !ut.vector.contains(pos))
        .collect();
    let kr_positions: Vec<usize> = kr.iter().map(|e| e.position).collect();
    let missed_by_ukranks: Vec<usize> = answer_ranks
        .iter()
        .copied()
        .filter(|pos| !kr_positions.contains(pos))
        .collect();
    println!("\nobservations (cf. §6.1):");
    println!(
        "  {} high-Pr^10 tuples are missing from the U-TopK vector",
        missed_by_utopk.len()
    );
    println!(
        "  {} high-Pr^10 tuples are missing from the U-KRanks answer",
        missed_by_ukranks.len()
    );
    let duplicated = k - {
        let mut distinct = kr_positions.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    };
    println!("  {duplicated} U-KRanks ranks are occupied by a repeated tuple");
    if let Some(&pos) = ut.vector.iter().find(|&&v| !in_ptk(v)) {
        println!(
            "  the U-TopK vector contains ranked position {} whose Pr^10 is only {:.3}",
            pos + 1,
            pr[pos]
        );
    }
    Ok(())
}
