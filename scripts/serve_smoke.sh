#!/usr/bin/env bash
# Smoke test for the `ptk serve` daemon, exactly as CI runs it:
# start the daemon on a generated dataset, run real queries, sweep
# malformed inputs (bad thresholds, k = 0, garbage SQL, a truncated
# request), scrape /metrics, and shut down cleanly — asserting the
# process stays up with structured errors throughout.
#
# Usage: scripts/serve_smoke.sh [path-to-ptk-binary]
set -euo pipefail

PTK="${1:-./target/release/ptk}"
WORK="$(mktemp -d)"
READY="$WORK/ready"
CSV="$WORK/data.csv"
SERVER_LOG="$WORK/server.log"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$SERVER_LOG" >&2 || true
  exit 1
}

echo "== generate dataset"
"$PTK" generate synthetic --tuples 400 --rules 50 --seed 7 > "$CSV"

echo "== start daemon"
"$PTK" serve "$CSV" --addr 127.0.0.1:0 --threads 2 --ready-file "$READY" \
  > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$READY" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died before becoming ready"
  sleep 0.1
done
[[ -s "$READY" ]] || fail "daemon never wrote the ready file"
ADDR="$(cat "$READY")"
echo "   daemon at $ADDR (pid $SERVER_PID)"

post_sql() {
  curl -sS -o "$WORK/body" -w '%{http_code}' --data-binary "$1" "http://$ADDR/sql"
}

assert_up() {
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon is no longer running ($1)"
}

echo "== good queries"
STMT='SELECT TOP 10 FROM t ORDER BY score DESC WITH PROBABILITY >= 0.3'
code="$(post_sql "$STMT")"
[[ "$code" == 200 ]] || fail "good query returned $code: $(cat "$WORK/body")"
grep -q "pass Pr" "$WORK/body" || fail "unexpected answer body: $(cat "$WORK/body")"
cp "$WORK/body" "$WORK/first"

# Served bytes must equal one-shot CLI output for the same statement.
"$PTK" sql "$CSV" "$STMT" > "$WORK/oneshot"
cmp "$WORK/first" "$WORK/oneshot" || fail "served body differs from one-shot ptk sql output"

# Identical repeat: the daemon must flag a cache hit and serve the
# identical bytes.
hit_header="$(curl -sS -D - -o "$WORK/body" --data-binary "$STMT" "http://$ADDR/sql" \
  | tr -d '\r' | grep -i '^x-ptk-cache:')"
[[ "$hit_header" == *hit* ]] || fail "expected a cache hit, got: $hit_header"
cmp "$WORK/body" "$WORK/first" || fail "cache hit served different bytes"

# A batch statement and a stats surface.
code="$(post_sql "$STMT; SELECT TOP 5 FROM t ORDER BY score DESC WITH PROBABILITY >= 0.5")"
[[ "$code" == 200 ]] || fail "batch returned $code: $(cat "$WORK/body")"
code="$(curl -sS -o "$WORK/body" -w '%{http_code}' --data-binary "$STMT" "http://$ADDR/sql?stats=json")"
[[ "$code" == 200 ]] || fail "stats surface returned $code"
grep -q '"engine.scanned"' "$WORK/body" || fail "stats body missing counters: $(cat "$WORK/body")"
assert_up "good queries"

echo "== malformed sweep"
for bad in \
  'SELECT TOP 10 FROM t ORDER BY score DESC WITH PROBABILITY >= 0' \
  'SELECT TOP 10 FROM t ORDER BY score DESC WITH PROBABILITY >= 1.5' \
  'SELECT TOP 10 FROM t ORDER BY score DESC WITH PROBABILITY >= NaN' \
  'SELECT TOP 0 FROM t ORDER BY score DESC WITH PROBABILITY >= 0.5' \
  'complete garbage' \
  ''; do
  code="$(post_sql "$bad")"
  [[ "$code" == 400 ]] || fail "malformed '$bad' returned $code"
  grep -q '"error":{"code":"query"' "$WORK/body" \
    || fail "no structured error for '$bad': $(cat "$WORK/body")"
  assert_up "malformed '$bad'"
done

# Truncated request: promise 50 body bytes, send 5, hang up.
printf 'POST /sql HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort' \
  | timeout 10 curl -sS -o /dev/null telnet://"$ADDR" 2>/dev/null || true
assert_up "truncated request"

# Wrong method and unknown path keep structured shapes.
code="$(curl -sS -o "$WORK/body" -w '%{http_code}' "http://$ADDR/sql")"
[[ "$code" == 405 ]] || fail "GET /sql returned $code"
code="$(curl -sS -o "$WORK/body" -w '%{http_code}' "http://$ADDR/nope")"
[[ "$code" == 404 ]] || fail "GET /nope returned $code"
assert_up "routing errors"

echo "== debug endpoints"
curl -sS "http://$ADDR/debug/queries" > "$WORK/flights"
head -c1 "$WORK/flights" | grep -q '\[' || fail "/debug/queries is not a JSON array"
grep -q '"outcome":"ok"' "$WORK/flights" || fail "no ok flight record: $(cat "$WORK/flights")"
grep -q '"outcome":"query_error"' "$WORK/flights" \
  || fail "malformed sweep left no query_error records"
grep -q '"cache":"hit"' "$WORK/flights" || fail "cache hit left no flight record"
grep -q '"plan":"' "$WORK/flights" || fail "flight records carry no plan"
grep -q 'nanos' "$WORK/flights" && fail "/debug/queries leaked wall-clock timings"
curl -sS "http://$ADDR/debug/pool" > "$WORK/pool"
grep -q '"threads":2' "$WORK/pool" || fail "/debug/pool missing threads: $(cat "$WORK/pool")"
grep -q '"flight_capacity"' "$WORK/pool" || fail "/debug/pool missing flight_capacity"
curl -sS "http://$ADDR/debug/config" > "$WORK/config"
grep -q '"slow_ms":null' "$WORK/config" || fail "/debug/config missing slow_ms: $(cat "$WORK/config")"
assert_up "debug endpoints"

echo "== metrics scrape"
curl -sS "http://$ADDR/metrics" > "$WORK/metrics"
for metric in ptk_serve_requests ptk_serve_query_errors ptk_serve_cache_hits \
  ptk_serve_latency_ms_p50 ptk_serve_latency_ms_p95 ptk_serve_latency_ms_p99 \
  ptk_serve_latency_ms_max; do
  grep -q "^$metric " "$WORK/metrics" || fail "/metrics missing $metric"
done
grep -q '^# HELP ptk_serve_latency_ms ' "$WORK/metrics" \
  || fail "/metrics missing the latency HELP line"
grep -q '^ptk_serve_panics' "$WORK/metrics" && fail "daemon recorded panics"

echo "== slow-query log"
# A second daemon with a 1 ms threshold over a larger dataset, unpruned,
# so the full-scan DP reliably crosses the threshold and the slow log
# must fire — carrying the flight record (with its plan) for the query.
CSV_BIG="$WORK/big.csv"
READY2="$WORK/ready2"
SLOW_LOG="$WORK/slow.log"
"$PTK" generate synthetic --tuples 30000 --rules 3000 --seed 9 > "$CSV_BIG"
"$PTK" serve "$CSV_BIG" --addr 127.0.0.1:0 --threads 1 --no-prune --slow-ms 1 \
  --ready-file "$READY2" > "$SLOW_LOG" 2>&1 &
SLOW_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$READY2" ]] && break
  kill -0 "$SLOW_PID" 2>/dev/null || { cat "$SLOW_LOG" >&2; fail "slow daemon died before ready"; }
  sleep 0.1
done
[[ -s "$READY2" ]] || fail "slow daemon never wrote the ready file"
ADDR2="$(cat "$READY2")"
code="$(curl -sS -o "$WORK/body" -w '%{http_code}' \
  --data-binary 'SELECT TOP 50 FROM t ORDER BY score DESC WITH PROBABILITY >= 0.3' \
  "http://$ADDR2/sql")"
[[ "$code" == 200 ]] || fail "slow daemon query returned $code: $(cat "$WORK/body")"
curl -sS "http://$ADDR2/debug/config" | grep -q '"slow_ms":1' \
  || fail "slow daemon /debug/config does not show slow_ms 1"
curl -sS -o /dev/null -X POST "http://$ADDR2/shutdown"
for _ in $(seq 1 100); do
  kill -0 "$SLOW_PID" 2>/dev/null || break
  sleep 0.1
done
grep -q "slow query" "$SLOW_LOG" || { cat "$SLOW_LOG" >&2; fail "slow-query log never fired"; }
grep -q '"plan":"' "$SLOW_LOG" || fail "slow-query log entry carries no plan"
grep -q '"total_nanos":' "$SLOW_LOG" || fail "slow-query log entry carries no timings"

echo "== clean shutdown"
code="$(curl -sS -o "$WORK/body" -w '%{http_code}' -X POST "http://$ADDR/shutdown")"
[[ "$code" == 200 ]] || fail "shutdown returned $code"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  fail "daemon did not exit after /shutdown"
fi
wait "$SERVER_PID" || fail "daemon exited non-zero"
SERVER_PID=""
grep -q "shutdown complete" "$SERVER_LOG" || fail "missing shutdown message in log"
grep -qiE "panic" "$SERVER_LOG" && fail "panic in server log"

echo "serve smoke: OK"
