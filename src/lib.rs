//! # `ptk` — probabilistic threshold top-k queries on uncertain data
//!
//! A Rust implementation of Hua, Pei, Zhang and Lin, *"Efficiently Answering
//! Probabilistic Threshold Top-k Queries on Uncertain Data"* (ICDE 2008):
//! the x-relation uncertain-data model, the exact one-scan PT-k algorithm
//! (rule-tuple compression, prefix-shared subset-probability DP, pruning),
//! the sampling method with Chernoff-bounded and progressive stopping, and
//! the U-TopK / U-KRanks baselines the paper compares against.
//!
//! This facade crate re-exports the workspace and adds a small high-level
//! API that works directly on [`UncertainTable`]s and maps results back to
//! tuples:
//!
//! ```
//! use ptk::{
//!     answer_exact, ExactOptions, PtkQuery, Ranking, TopKQuery,
//!     UncertainTableBuilder, Value,
//! };
//!
//! // Table 1 of the paper: panda sightings with exclusive co-detections.
//! let mut b = UncertainTableBuilder::new(vec!["duration".into()]);
//! let r1 = b.push(0.3, vec![Value::Float(25.0)]).unwrap();
//! let r2 = b.push(0.4, vec![Value::Float(21.0)]).unwrap();
//! let r3 = b.push(0.5, vec![Value::Float(13.0)]).unwrap();
//! let r4 = b.push(1.0, vec![Value::Float(12.0)]).unwrap();
//! let r5 = b.push(0.8, vec![Value::Float(17.0)]).unwrap();
//! let r6 = b.push(0.2, vec![Value::Float(11.0)]).unwrap();
//! b.exclusive(&[r2, r3]).unwrap();
//! b.exclusive(&[r5, r6]).unwrap();
//! let table = b.finish().unwrap();
//!
//! // "Which records have probability >= 0.35 of being a top-2 duration?"
//! let query = PtkQuery::new(
//!     TopKQuery::top(2, Ranking::descending(0)),
//!     0.35,
//! ).unwrap();
//! let answer = answer_exact(&table, &query, &ExactOptions::default()).unwrap();
//! let ids: Vec<usize> = answer.matches.iter().map(|m| m.id.index()).collect();
//! assert_eq!(ids, vec![1, 4, 2]); // R2, R5, R3 — Example 1 of the paper
//! # let _ = (r1, r4, r6);
//! ```
//!
//! The sub-crates are re-exported as modules for direct access:
//! [`model`] (ptk-core), [`worlds`], [`engine`], [`sampling`], [`rankers`],
//! [`datagen`], [`access`] (progressive retrieval: TA middleware, disk
//! runs), [`sql`] (the statement language), [`obs`] (the metrics and
//! tracing layer behind `--stats` and the bench artifacts) and [`par`]
//! (the deterministic scoped thread pool behind batch execution) and
//! [`serve`] (the resident query daemon behind `ptk serve`). The
//! in-repo infrastructure that keeps the build hermetic is re-exported
//! too: [`rng`] (seedable PRNGs) and [`check`] (the deterministic
//! property-test harness).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ptk_access as access;
pub use ptk_core as model;
pub use ptk_core::{check, prop_assert, prop_assert_eq, rng};
pub use ptk_datagen as datagen;
pub use ptk_engine as engine;
pub use ptk_obs as obs;
pub use ptk_par as par;
pub use ptk_rankers as rankers;
pub use ptk_sampling as sampling;
pub use ptk_serve as serve;
pub use ptk_sql as sql;
pub use ptk_worlds as worlds;

pub use ptk_access::{
    write_run, AggregateFn, FileSource, RankedSource, SortedVecSource, TaSource, ViewSource,
};
pub use ptk_core::{
    ComparisonOp, GenerationRule, ModelError, Predicate, Probability, PtkQuery, RankedView,
    Ranking, Result, RuleId, SortDirection, TopKQuery, Tuple, TupleId, UncertainTable,
    UncertainTableBuilder, Value,
};
pub use ptk_engine::{
    evaluate_ptk_multi_source, evaluate_ptk_source, AnswerTuple, EngineOptions as ExactOptions,
    ExecStats, PtkBatch, PtkExecutor, PtkPlan, PtkResult, SharingVariant, StopReason,
    StreamOptions, StreamPtkResult,
};
pub use ptk_rankers::{expected_rank_topk, expected_ranks, ukranks, utopk};
pub use ptk_sampling::{SamplingOptions, StopCriterion};

/// One tuple of a query answer, mapped back to the source table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleMatch {
    /// The tuple's id in the queried table.
    pub id: TupleId,
    /// Its top-k probability — exact for [`answer_exact`], estimated for
    /// [`answer_sampling`].
    pub probability: f64,
}

/// A PT-k answer set, in ranking order.
#[derive(Debug, Clone)]
pub struct PtkAnswer {
    /// The tuples whose top-k probability passes the threshold.
    pub matches: Vec<TupleMatch>,
    /// Exact-engine execution statistics, when the exact engine ran.
    pub stats: Option<ExecStats>,
}

/// Answers a PT-k query exactly (the paper's Figure 3 algorithm).
///
/// # Errors
/// Propagates model errors from building the ranked view (unknown columns in
/// the predicate or ranking function).
pub fn answer_exact(
    table: &UncertainTable,
    query: &PtkQuery,
    options: &ExactOptions,
) -> Result<PtkAnswer> {
    let view = RankedView::build(table, query.query())?;
    let result = ptk_engine::evaluate_ptk(&view, query.k(), query.threshold().value(), options);
    let matches = result
        .answers
        .iter()
        .map(|a| TupleMatch {
            id: a.id,
            probability: a.probability,
        })
        .collect();
    Ok(PtkAnswer {
        matches,
        stats: Some(result.stats),
    })
}

/// Answers a PT-k query approximately by sampling possible worlds (§5 of
/// the paper). Deterministic given [`SamplingOptions::seed`].
///
/// # Errors
/// Propagates model errors from building the ranked view.
pub fn answer_sampling(
    table: &UncertainTable,
    query: &PtkQuery,
    options: &SamplingOptions,
) -> Result<PtkAnswer> {
    let view = RankedView::build(table, query.query())?;
    let (answers, estimate) =
        ptk_sampling::sample_ptk(&view, query.k(), query.threshold().value(), options);
    let matches = answers
        .iter()
        .map(|&pos| TupleMatch {
            id: view.tuple(pos).id,
            probability: estimate.probabilities[pos],
        })
        .collect();
    Ok(PtkAnswer {
        matches,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panda() -> UncertainTable {
        let mut b = UncertainTableBuilder::new(vec!["duration".into()]);
        let _r1 = b.push(0.3, vec![Value::Float(25.0)]).unwrap();
        let r2 = b.push(0.4, vec![Value::Float(21.0)]).unwrap();
        let r3 = b.push(0.5, vec![Value::Float(13.0)]).unwrap();
        let _r4 = b.push(1.0, vec![Value::Float(12.0)]).unwrap();
        let r5 = b.push(0.8, vec![Value::Float(17.0)]).unwrap();
        let r6 = b.push(0.2, vec![Value::Float(11.0)]).unwrap();
        b.exclusive(&[r2, r3]).unwrap();
        b.exclusive(&[r5, r6]).unwrap();
        b.finish().unwrap()
    }

    fn panda_query(p: f64) -> PtkQuery {
        PtkQuery::new(TopKQuery::top(2, Ranking::descending(0)), p).unwrap()
    }

    #[test]
    fn exact_answer_maps_back_to_tuples() {
        let answer = answer_exact(&panda(), &panda_query(0.35), &ExactOptions::default()).unwrap();
        let ids: Vec<usize> = answer.matches.iter().map(|m| m.id.index()).collect();
        assert_eq!(ids, vec![1, 4, 2]);
        assert!((answer.matches[1].probability - 0.704).abs() < 1e-12);
        assert!(answer.stats.is_some());
    }

    #[test]
    fn sampling_answer_approximates_exact() {
        let options = SamplingOptions {
            stop: StopCriterion::FixedUnits(30_000),
            seed: 1,
        };
        let answer = answer_sampling(&panda(), &panda_query(0.35), &options).unwrap();
        let ids: Vec<usize> = answer.matches.iter().map(|m| m.id.index()).collect();
        assert_eq!(ids, vec![1, 4, 2]);
        assert!(answer.stats.is_none());
    }

    #[test]
    fn predicate_errors_propagate() {
        let query = PtkQuery::new(
            TopKQuery::new(
                2,
                Predicate::compare(9, ComparisonOp::Gt, 0i64),
                Ranking::descending(0),
            )
            .unwrap(),
            0.5,
        )
        .unwrap();
        assert!(answer_exact(&panda(), &query, &ExactOptions::default()).is_err());
    }

    #[test]
    fn high_threshold_returns_only_certainties() {
        let answer = answer_exact(&panda(), &panda_query(1.0), &ExactOptions::default()).unwrap();
        assert!(answer.matches.is_empty());
    }
}
